//! Packet-to-app mapping strategies.
//!
//! To attribute a connection to an app, the `/proc/net` tables must be parsed
//! — an operation that usually costs more than 5 ms and grows with the number
//! of live connections (Figure 5(a)). Three strategies are implemented:
//!
//! * [`EagerMapper`] — parse on every SYN, in the main packet-processing
//!   path. This is the straw-man whose overhead Figure 5(a) plots.
//! * [`CachedMapper`] — cache UID by remote endpoint, as Haystack does. Fast,
//!   but wrong whenever two apps talk to the same server endpoint (the
//!   Facebook-app vs Facebook-in-Chrome example of §3.3).
//! * [`LazyMapper`] — MopEye's mechanism (§3.3): the mapping is deferred off
//!   the critical path into the socket-connect thread, and when several
//!   connect threads need a mapping concurrently only one performs the parse
//!   while the others sleep (50 ms periods) and read its snapshot.
//!
//! All three charge the measured parse cost through the cost model (that is
//! what Figure 5 plots), but the lookups themselves run against the
//! incrementally maintained `FourTuple → uid` index on [`ConnectionTable`] —
//! amortised O(1) instead of re-rendering and re-parsing the four pseudo
//! files on every request. The text round trip itself stays covered by
//! [`crate::procfs`] and by the index-consistency test below.

use std::collections::HashMap;

use mop_packet::{Endpoint, FourTuple};
use mop_simnet::{CostModel, SimDuration, SimRng, SimTime};

use crate::table::ConnectionTable;

/// Which mapping strategy the engine is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingStrategy {
    /// Parse `/proc/net` on every SYN, synchronously.
    Eager,
    /// Cache by remote endpoint (Haystack-style).
    Cached,
    /// MopEye's lazy mapping (§3.3).
    Lazy,
}

/// The sleep period a waiting connect thread uses while another thread
/// performs the parse (§3.3).
pub const LAZY_WAIT_PERIOD: SimDuration = SimDuration::from_millis(50);

/// The result of one mapping request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingOutcome {
    /// The UID the strategy attributed the flow to, if any.
    pub uid: Option<u32>,
    /// CPU overhead this request added to its thread (what Figure 5 plots).
    pub cpu_cost: SimDuration,
    /// Wall-clock latency until the mapping was available (includes sleeps).
    pub latency: SimDuration,
    /// True if this request performed a full `/proc/net` parse.
    pub performed_parse: bool,
    /// True if this request waited for another thread's parse.
    pub waited: bool,
    /// True if the attribution matches the kernel's ground truth.
    pub correct: bool,
}

/// Aggregate statistics over many mapping requests.
#[derive(Debug, Default, Clone)]
pub struct MappingStats {
    /// Total requests served.
    pub requests: u64,
    /// Requests that performed a full parse.
    pub parses: u64,
    /// Requests that waited for another thread's parse.
    pub waits: u64,
    /// Requests served from a cache or snapshot without parsing or waiting.
    pub hits: u64,
    /// Requests whose attribution was wrong.
    pub mismapped: u64,
    /// CPU overhead samples, one per request (milliseconds).
    pub cpu_cost_ms: Vec<f64>,
}

impl MappingStats {
    /// Adds another run's counters and cost samples into this one
    /// (cross-shard aggregation).
    pub fn merge(&mut self, other: &MappingStats) {
        self.requests += other.requests;
        self.parses += other.parses;
        self.waits += other.waits;
        self.hits += other.hits;
        self.mismapped += other.mismapped;
        self.cpu_cost_ms.extend_from_slice(&other.cpu_cost_ms);
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: &MappingOutcome) {
        self.requests += 1;
        if outcome.performed_parse {
            self.parses += 1;
        } else if outcome.waited {
            self.waits += 1;
        } else {
            self.hits += 1;
        }
        if !outcome.correct {
            self.mismapped += 1;
        }
        self.cpu_cost_ms.push(outcome.cpu_cost.as_millis_f64());
    }

    /// Fraction of requests that avoided a parse (the paper's "mitigation
    /// rate"; 67.8 % in the web-browsing evaluation of §3.3).
    pub fn mitigation_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        1.0 - self.parses as f64 / self.requests as f64
    }

    /// Fraction of requests that were attributed to the wrong app.
    pub fn mismap_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.mismapped as f64 / self.requests as f64
    }
}

fn check_cost(rng: &mut SimRng) -> SimDuration {
    // A hash-map lookup plus a branch: single-digit microseconds.
    SimDuration::from_micros(rng.int_inclusive(2, 12))
}

/// Parse-on-every-SYN mapping.
#[derive(Debug, Default)]
pub struct EagerMapper {
    stats: MappingStats,
}

impl EagerMapper {
    /// Creates an eager mapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `flow` by parsing the tables right now.
    pub fn map(
        &mut self,
        table: &ConnectionTable,
        cost_model: &CostModel,
        rng: &mut SimRng,
        flow: FourTuple,
    ) -> MappingOutcome {
        let cost = cost_model.sample_proc_parse(table.len(), rng);
        let uid = table.uid_of(flow);
        // An eager parse always observes the live table, so its attribution
        // is correct by construction; fidelity of the index against the
        // rendered `/proc/net` text is pinned by the round-trip consistency
        // test rather than re-derived on every request.
        let outcome = MappingOutcome {
            uid,
            cpu_cost: cost,
            latency: cost,
            performed_parse: true,
            waited: false,
            correct: true,
        };
        self.stats.record(&outcome);
        outcome
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MappingStats {
        &self.stats
    }
}

/// Remote-endpoint keyed cache mapping (Haystack-style).
#[derive(Debug, Default)]
pub struct CachedMapper {
    cache: HashMap<Endpoint, u32>,
    stats: MappingStats,
}

impl CachedMapper {
    /// Creates a cached mapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `flow`, consulting the remote-endpoint cache first.
    pub fn map(
        &mut self,
        table: &ConnectionTable,
        cost_model: &CostModel,
        rng: &mut SimRng,
        flow: FourTuple,
    ) -> MappingOutcome {
        let truth = table.uid_of(flow);
        if let Some(&uid) = self.cache.get(&flow.dst) {
            let cost = check_cost(rng);
            let outcome = MappingOutcome {
                uid: Some(uid),
                cpu_cost: cost,
                latency: cost,
                performed_parse: false,
                waited: false,
                correct: Some(uid) == truth,
            };
            self.stats.record(&outcome);
            return outcome;
        }
        let cost = cost_model.sample_proc_parse(table.len(), rng);
        let uid = table.uid_index().get(&flow).copied();
        if let Some(uid) = uid {
            self.cache.insert(flow.dst, uid);
        }
        let outcome = MappingOutcome {
            uid,
            cpu_cost: cost,
            latency: cost,
            performed_parse: true,
            waited: false,
            correct: uid == truth,
        };
        self.stats.record(&outcome);
        outcome
    }

    /// Number of cached remote endpoints.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MappingStats {
        &self.stats
    }
}

/// MopEye's lazy mapping (§3.3).
///
/// Requests arrive from socket-connect threads *after* the external
/// connection has been established, so none of this work sits on the
/// handshake path. When several requests overlap in time, only the first
/// performs the parse; the others sleep in 50 ms periods and then read the
/// fresh snapshot, paying only a lookup's worth of CPU.
#[derive(Debug, Default)]
pub struct LazyMapper {
    snapshot: HashMap<FourTuple, u32>,
    snapshot_at: Option<SimTime>,
    /// Table generation the snapshot was taken at; lets a re-parse of an
    /// unchanged table skip re-copying the index.
    snapshot_generation: Option<u64>,
    parse_in_flight_until: Option<SimTime>,
    stats: MappingStats,
}

impl LazyMapper {
    /// Creates a lazy mapper with an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `flow` from a socket-connect thread.
    ///
    /// `registered_at` is when the connection appeared in the kernel table
    /// (its SYN time); `now` is the current virtual time in the connect
    /// thread, i.e. just after the external connection was established.
    pub fn map(
        &mut self,
        table: &ConnectionTable,
        cost_model: &CostModel,
        rng: &mut SimRng,
        flow: FourTuple,
        registered_at: SimTime,
        now: SimTime,
    ) -> MappingOutcome {
        let truth = table.uid_of(flow);
        // 1. A snapshot that is already available (its parse has finished)
        //    and was taken after this connection was registered contains it:
        //    answer from the snapshot.
        if let Some(at) = self.snapshot_at {
            if at >= registered_at && at <= now {
                if let Some(&uid) = self.snapshot.get(&flow) {
                    let cost = check_cost(rng);
                    let outcome = MappingOutcome {
                        uid: Some(uid),
                        cpu_cost: cost,
                        latency: cost,
                        performed_parse: false,
                        waited: false,
                        correct: Some(uid) == truth,
                    };
                    self.stats.record(&outcome);
                    return outcome;
                }
            }
        }
        // 2. Another connect thread is parsing: sleep in 50 ms periods until
        //    it finishes, then read its snapshot. The sleeps consume no CPU.
        if let Some(until) = self.parse_in_flight_until {
            if until > now {
                let wait = until - now;
                let periods = (wait.as_nanos() + LAZY_WAIT_PERIOD.as_nanos() - 1)
                    / LAZY_WAIT_PERIOD.as_nanos().max(1);
                let latency = LAZY_WAIT_PERIOD.saturating_mul(periods.max(1));
                let cost = check_cost(rng);
                // The parse that is in flight will observe the current table,
                // which includes this connection (it was registered at SYN
                // time, before the connect completed).
                let uid = table.uid_of(flow);
                let outcome = MappingOutcome {
                    uid,
                    cpu_cost: cost,
                    latency,
                    performed_parse: false,
                    waited: true,
                    correct: uid == truth,
                };
                self.stats.record(&outcome);
                return outcome;
            }
        }
        // 3. Nobody is parsing: this thread does the work and refreshes the
        //    shared snapshot. The simulated CPU cost is a full parse; the
        //    wall-clock work is a copy of the incremental index, skipped
        //    entirely when the table has not mutated since the last snapshot.
        let cost = cost_model.sample_proc_parse(table.len(), rng);
        self.parse_in_flight_until = Some(now + cost);
        if self.snapshot_generation != Some(table.generation()) {
            self.snapshot.clone_from(table.uid_index());
            self.snapshot_generation = Some(table.generation());
        }
        self.snapshot_at = Some(now + cost);
        let uid = self.snapshot.get(&flow).copied();
        let outcome = MappingOutcome {
            uid,
            cpu_cost: cost,
            latency: cost,
            performed_parse: true,
            waited: false,
            correct: uid == truth,
        };
        self.stats.record(&outcome);
        outcome
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MappingStats {
        &self.stats
    }

    /// When the current snapshot was taken, if one exists.
    pub fn snapshot_age(&self, now: SimTime) -> Option<SimDuration> {
        self.snapshot_at.map(|at| now.duration_since(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::SocketStateCode;

    fn flow(port: u16) -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, port), Endpoint::v4(31, 13, 79, 251, 443))
    }

    fn setup() -> (ConnectionTable, CostModel, SimRng) {
        let mut table = ConnectionTable::new();
        for i in 0..40u16 {
            table.register(flow(40000 + i), true, 10_100 + u32::from(i % 7), SocketStateCode::SynSent);
        }
        (table, CostModel::android_phone(), SimRng::seed_from_u64(5))
    }

    #[test]
    fn eager_mapper_is_correct_but_expensive() {
        let (table, cost, mut rng) = setup();
        let mut mapper = EagerMapper::new();
        let outcome = mapper.map(&table, &cost, &mut rng, flow(40003));
        assert!(outcome.correct);
        assert!(outcome.performed_parse);
        assert_eq!(outcome.uid, Some(10_103));
        assert!(outcome.cpu_cost > SimDuration::from_millis(1));
        assert_eq!(mapper.stats().requests, 1);
        assert_eq!(mapper.stats().mitigation_rate(), 0.0);
    }

    #[test]
    fn eager_mapper_misses_unknown_flows() {
        let (table, cost, mut rng) = setup();
        let mut mapper = EagerMapper::new();
        let unknown = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 1), Endpoint::v4(9, 9, 9, 9, 1));
        let outcome = mapper.map(&table, &cost, &mut rng, unknown);
        assert_eq!(outcome.uid, None);
        // None == None ground truth: not a mismap, just unknown.
        assert!(outcome.correct);
    }

    #[test]
    fn cached_mapper_hits_are_cheap_but_can_mismap() {
        let (mut table, cost, mut rng) = setup();
        let mut mapper = CachedMapper::new();
        // First request fills the cache for the Facebook endpoint from the
        // Facebook app (uid 10_100).
        let first = mapper.map(&table, &cost, &mut rng, flow(40000));
        assert!(first.performed_parse);
        assert!(first.correct);
        // Chrome (uid 20_000) now connects to the same remote endpoint.
        let chrome_flow = flow(41000);
        table.register(chrome_flow, true, 20_000, SocketStateCode::SynSent);
        let second = mapper.map(&table, &cost, &mut rng, chrome_flow);
        assert!(!second.performed_parse);
        assert!(second.cpu_cost < SimDuration::from_millis(1));
        // The cache attributes Chrome's traffic to the Facebook app.
        assert_eq!(second.uid, Some(10_100));
        assert!(!second.correct);
        assert!(mapper.stats().mismap_rate() > 0.0);
        assert_eq!(mapper.cache_len(), 1);
    }

    #[test]
    fn lazy_mapper_first_request_parses() {
        let (table, cost, mut rng) = setup();
        let mut mapper = LazyMapper::new();
        let t0 = SimTime::from_millis(100);
        let outcome = mapper.map(&table, &cost, &mut rng, flow(40001), SimTime::from_millis(50), t0);
        assert!(outcome.performed_parse);
        assert!(outcome.correct);
        assert!(outcome.cpu_cost > SimDuration::from_millis(1));
    }

    #[test]
    fn lazy_mapper_concurrent_requests_wait_instead_of_parsing() {
        let (table, cost, mut rng) = setup();
        let mut mapper = LazyMapper::new();
        let t0 = SimTime::from_millis(100);
        let first = mapper.map(&table, &cost, &mut rng, flow(40001), SimTime::from_millis(50), t0);
        assert!(first.performed_parse);
        // A second connect thread needs a mapping 1 ms later, while the first
        // parse is still in flight.
        let t1 = t0 + SimDuration::from_millis(1);
        let second =
            mapper.map(&table, &cost, &mut rng, flow(40002), SimTime::from_millis(51), t1);
        assert!(!second.performed_parse);
        assert!(second.waited);
        assert!(second.correct);
        // CPU overhead is negligible even though latency includes the sleep.
        assert!(second.cpu_cost < SimDuration::from_millis(1));
        assert!(second.latency >= LAZY_WAIT_PERIOD);
        assert_eq!(mapper.stats().parses, 1);
        assert_eq!(mapper.stats().waits, 1);
        assert!(mapper.stats().mitigation_rate() > 0.4);
    }

    #[test]
    fn lazy_mapper_snapshot_serves_later_requests_without_parsing() {
        let (table, cost, mut rng) = setup();
        let mut mapper = LazyMapper::new();
        let t0 = SimTime::from_millis(100);
        mapper.map(&table, &cost, &mut rng, flow(40001), SimTime::from_millis(50), t0);
        // Much later, a connection that was already registered before the
        // snapshot asks for its mapping: served from the snapshot.
        let t1 = SimTime::from_millis(400);
        let outcome = mapper.map(&table, &cost, &mut rng, flow(40010), SimTime::from_millis(60), t1);
        assert!(!outcome.performed_parse);
        assert!(!outcome.waited);
        assert!(outcome.correct);
        assert!(mapper.snapshot_age(t1).is_some());
    }

    #[test]
    fn lazy_mapper_new_connection_after_snapshot_triggers_fresh_parse() {
        let (mut table, cost, mut rng) = setup();
        let mut mapper = LazyMapper::new();
        let t0 = SimTime::from_millis(100);
        mapper.map(&table, &cost, &mut rng, flow(40001), SimTime::from_millis(50), t0);
        // A brand-new connection registered *after* the snapshot cannot be in
        // it, so once the in-flight parse has finished a new parse happens.
        let new_flow = flow(42000);
        table.register(new_flow, true, 30_000, SocketStateCode::SynSent);
        let t1 = SimTime::from_secs(2);
        let outcome = mapper.map(&table, &cost, &mut rng, new_flow, SimTime::from_secs(1), t1);
        assert!(outcome.performed_parse);
        assert_eq!(outcome.uid, Some(30_000));
        assert!(outcome.correct);
        assert_eq!(mapper.stats().parses, 2);
    }

    #[test]
    fn stats_mitigation_matches_paper_scenario_shape() {
        // Simulate a browsing burst: groups of connect threads arriving close
        // together. Within each burst only the first should parse.
        let (mut table, cost, mut rng) = setup();
        let mut mapper = LazyMapper::new();
        let mut port = 43_000u16;
        for burst in 0..40u64 {
            let burst_start = SimTime::from_millis(500 * burst);
            for i in 0..12u64 {
                let f = flow(port);
                port += 1;
                table.register(f, true, 10_100, SocketStateCode::SynSent);
                let registered = burst_start;
                let now = burst_start + SimDuration::from_millis(30 + i);
                mapper.map(&table, &cost, &mut rng, f, registered, now);
            }
        }
        let stats = mapper.stats();
        assert_eq!(stats.requests, 480);
        // The paper reports a 67.8 % mitigation rate for web browsing; the
        // synthetic burst pattern should land in the same region.
        assert!(stats.mitigation_rate() > 0.5, "mitigation {}", stats.mitigation_rate());
        assert!(stats.mismap_rate() == 0.0);
        assert_eq!(stats.cpu_cost_ms.len(), 480);
    }

    #[test]
    fn empty_stats_rates_are_zero() {
        let stats = MappingStats::default();
        assert_eq!(stats.mitigation_rate(), 0.0);
        assert_eq!(stats.mismap_rate(), 0.0);
    }

    /// The incremental index the mappers consult must stay byte-for-byte
    /// consistent with what a full render → parse round trip of the four
    /// `/proc/net` pseudo files would produce (the work the old eager path
    /// performed on every SYN).
    #[test]
    fn incremental_index_matches_full_proc_net_rebuild() {
        use crate::procfs::{parse_proc_net, render_proc_net};
        use crate::table::Protocol;

        fn full_rebuild(table: &ConnectionTable) -> HashMap<FourTuple, u32> {
            let mut map = HashMap::new();
            for protocol in [Protocol::Tcp6, Protocol::Tcp, Protocol::Udp, Protocol::Udp6] {
                let file = render_proc_net(table, protocol);
                for entry in parse_proc_net(&file) {
                    map.entry(FourTuple::new(entry.local, entry.remote)).or_insert(entry.uid);
                }
            }
            map
        }

        let (mut table, _, _) = setup();
        let gen_after_setup = table.generation();
        assert_eq!(*table.uid_index(), full_rebuild(&table));
        // Mutations keep the index in sync: removal, re-registration, UDP,
        // state changes (which must NOT bump the generation) and truncation.
        assert!(table.remove(flow(40003)));
        table.register(flow(40003), true, 99_000, SocketStateCode::SynSent);
        let udp_flow = FourTuple::new(Endpoint::v4(10, 0, 0, 2, 5353), Endpoint::v4(8, 8, 8, 8, 53));
        table.register(udp_flow, false, 77_000, SocketStateCode::Close);
        assert_eq!(*table.uid_index(), full_rebuild(&table));
        assert!(table.generation() > gen_after_setup);
        let gen_before_state = table.generation();
        table.set_state(flow(40001), SocketStateCode::Established);
        assert_eq!(table.generation(), gen_before_state, "state changes keep ownership");
        table.truncate_oldest(10);
        assert_eq!(*table.uid_index(), full_rebuild(&table));
        assert_eq!(table.uid_index().len(), 10);
    }
}
