//! UID to package-name resolution, mirroring Android's `PackageManager`.
//!
//! MopEye resolves the UID found in `/proc/net/*` to a human-readable app
//! name through `PackageManager` APIs and caches the result, since UID to
//! name is a stable mapping for the lifetime of an install (§2.2).

use std::collections::HashMap;

/// The simulated package manager: the set of installed apps and their UIDs.
#[derive(Debug, Default, Clone)]
pub struct PackageManager {
    by_uid: HashMap<u32, String>,
    lookups: u64,
    cache: HashMap<u32, String>,
    cache_hits: u64,
}

impl PackageManager {
    /// Creates an empty package manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a package manager pre-populated with a set of well-known apps,
    /// starting at UID 10100 (Android app UIDs start at 10000).
    pub fn with_apps(names: &[&str]) -> Self {
        let mut pm = Self::new();
        for (i, name) in names.iter().enumerate() {
            pm.install(10_100 + i as u32, name);
        }
        pm
    }

    /// Resets the manager to its just-constructed state, keeping the table
    /// allocations. Installed packages are cleared too: the engine installs
    /// them per run from the flow specs, so they are run state, not config.
    pub fn reset(&mut self) {
        self.by_uid.clear();
        self.lookups = 0;
        self.cache.clear();
        self.cache_hits = 0;
    }

    /// Installs a package under `uid`.
    pub fn install(&mut self, uid: u32, package: &str) {
        self.by_uid.insert(uid, package.to_string());
        // Installation invalidates any stale cached name for this UID.
        self.cache.remove(&uid);
    }

    /// Uninstalls whatever package owns `uid`.
    pub fn uninstall(&mut self, uid: u32) -> Option<String> {
        self.cache.remove(&uid);
        self.by_uid.remove(&uid)
    }

    /// The UID of `package`, if installed.
    pub fn uid_of(&self, package: &str) -> Option<u32> {
        self.by_uid.iter().find(|(_, name)| name.as_str() == package).map(|(uid, _)| *uid)
    }

    /// Resolves a UID to its package name through the (uncached) framework
    /// call. The caller is responsible for charging the lookup cost.
    pub fn name_for_uid(&mut self, uid: u32) -> Option<String> {
        self.lookups += 1;
        self.by_uid.get(&uid).cloned()
    }

    /// Resolves a UID with the per-process cache MopEye keeps so repeated
    /// packets from the same app do not pay the framework call again.
    pub fn name_for_uid_cached(&mut self, uid: u32) -> Option<String> {
        if let Some(name) = self.cache.get(&uid) {
            self.cache_hits += 1;
            return Some(name.clone());
        }
        let name = self.name_for_uid(uid)?;
        self.cache.insert(uid, name.clone());
        Some(name)
    }

    /// Number of uncached framework lookups performed.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Number of cache hits.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits
    }

    /// Number of installed packages.
    pub fn installed_count(&self) -> usize {
        self.by_uid.len()
    }

    /// All installed (uid, package) pairs, sorted by UID.
    pub fn installed(&self) -> Vec<(u32, String)> {
        let mut v: Vec<_> = self.by_uid.iter().map(|(u, n)| (*u, n.clone())).collect();
        v.sort_by_key(|(u, _)| *u);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_resolve() {
        let mut pm = PackageManager::new();
        pm.install(10123, "com.whatsapp");
        pm.install(10200, "com.facebook.katana");
        assert_eq!(pm.name_for_uid(10123), Some("com.whatsapp".into()));
        assert_eq!(pm.name_for_uid(99999), None);
        assert_eq!(pm.uid_of("com.facebook.katana"), Some(10200));
        assert_eq!(pm.uid_of("com.unknown"), None);
        assert_eq!(pm.installed_count(), 2);
        assert_eq!(pm.lookup_count(), 2);
    }

    #[test]
    fn cached_lookup_avoids_framework_calls() {
        let mut pm = PackageManager::new();
        pm.install(10123, "com.whatsapp");
        assert_eq!(pm.name_for_uid_cached(10123), Some("com.whatsapp".into()));
        assert_eq!(pm.name_for_uid_cached(10123), Some("com.whatsapp".into()));
        assert_eq!(pm.lookup_count(), 1);
        assert_eq!(pm.cache_hit_count(), 1);
    }

    #[test]
    fn reinstall_invalidates_cache() {
        let mut pm = PackageManager::new();
        pm.install(10123, "com.old");
        assert_eq!(pm.name_for_uid_cached(10123), Some("com.old".into()));
        pm.install(10123, "com.new");
        assert_eq!(pm.name_for_uid_cached(10123), Some("com.new".into()));
    }

    #[test]
    fn uninstall_removes_package() {
        let mut pm = PackageManager::new();
        pm.install(10123, "com.gone");
        assert_eq!(pm.uninstall(10123), Some("com.gone".into()));
        assert_eq!(pm.uninstall(10123), None);
        assert_eq!(pm.name_for_uid_cached(10123), None);
    }

    #[test]
    fn with_apps_assigns_sequential_uids() {
        let pm = PackageManager::with_apps(&["com.a", "com.b", "com.c"]);
        assert_eq!(pm.installed_count(), 3);
        let installed = pm.installed();
        assert_eq!(installed[0], (10_100, "com.a".into()));
        assert_eq!(installed[2], (10_102, "com.c".into()));
    }
}
