//! Property-based tests for the `/proc/net` substrate: the text format must
//! round-trip for arbitrary connections, and the mapping strategies must
//! never attribute a flow to an app that does not own it when they claim
//! correctness.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use mop_packet::{Endpoint, FourTuple};
use mop_procnet::{
    parse_proc_net, render_proc_net, ConnectionTable, EagerMapper, LazyMapper, Protocol,
    SocketStateCode,
};
use mop_simnet::{CostModel, SimRng, SimTime};

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<[u8; 4]>(), 1u16..=65535)
        .prop_map(|(o, port)| Endpoint::new(Ipv4Addr::new(o[0], o[1], o[2], o[3]), port))
}

fn arb_state() -> impl Strategy<Value = SocketStateCode> {
    prop_oneof![
        Just(SocketStateCode::Established),
        Just(SocketStateCode::SynSent),
        Just(SocketStateCode::TimeWait),
        Just(SocketStateCode::Close),
        Just(SocketStateCode::Listen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn proc_net_text_roundtrips_arbitrary_tables(
        entries in proptest::collection::vec((arb_endpoint(), arb_endpoint(), 10_000u32..20_000, arb_state()), 0..40),
    ) {
        let mut table = ConnectionTable::new();
        for (local, remote, uid, state) in &entries {
            table.register(FourTuple::new(*local, *remote), true, *uid, *state);
        }
        let file = render_proc_net(&table, Protocol::Tcp);
        let parsed = parse_proc_net(&file);
        prop_assert_eq!(parsed.len(), entries.len());
        for (parsed_entry, (local, remote, uid, state)) in parsed.iter().zip(&entries) {
            prop_assert_eq!(parsed_entry.local, *local);
            prop_assert_eq!(parsed_entry.remote, *remote);
            prop_assert_eq!(parsed_entry.uid, *uid);
            prop_assert_eq!(parsed_entry.state, *state);
        }
    }

    #[test]
    fn eager_mapping_is_always_correct_for_registered_flows(
        flows in proptest::collection::vec((1024u16..60_000, 10_000u32..10_050), 1..30),
        seed in any::<u64>(),
    ) {
        let cost = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut table = ConnectionTable::new();
        let mut registered = Vec::new();
        for (port, uid) in &flows {
            let flow = FourTuple::new(
                Endpoint::v4(10, 0, 0, 2, *port),
                Endpoint::v4(31, 13, 79, 251, 443),
            );
            // Ports may repeat in the generated vector; only the first
            // registration counts (the kernel would not allow a duplicate).
            if table.uid_of(flow).is_none() {
                table.register(flow, true, *uid, SocketStateCode::SynSent);
                registered.push((flow, *uid));
            }
        }
        let mut mapper = EagerMapper::new();
        for (flow, uid) in &registered {
            let outcome = mapper.map(&table, &cost, &mut rng, *flow);
            prop_assert_eq!(outcome.uid, Some(*uid));
            prop_assert!(outcome.correct);
        }
        prop_assert_eq!(mapper.stats().mismap_rate(), 0.0);
    }

    #[test]
    fn lazy_mapping_is_correct_and_cheaper_in_aggregate(
        ports in proptest::collection::vec(1024u16..60_000, 2..25),
        seed in any::<u64>(),
    ) {
        let cost = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut table = ConnectionTable::new();
        let mut lazy = LazyMapper::new();
        let mut eager = EagerMapper::new();
        let mut seen = std::collections::HashSet::new();
        let mut t = SimTime::from_millis(10);
        for port in ports {
            if !seen.insert(port) {
                continue;
            }
            let flow = FourTuple::new(
                Endpoint::v4(10, 0, 0, 2, port),
                Endpoint::v4(216, 58, 221, 132, 443),
            );
            table.register(flow, true, 10_100, SocketStateCode::SynSent);
            let registered = t;
            let established = t + mop_simnet::SimDuration::from_millis(5);
            let lazy_outcome = lazy.map(&table, &cost, &mut rng, flow, registered, established);
            let eager_outcome = eager.map(&table, &cost, &mut rng, flow);
            prop_assert!(lazy_outcome.correct);
            prop_assert!(eager_outcome.correct);
            t += mop_simnet::SimDuration::from_millis(2);
        }
        // Lazy mapping never performs more parses than eager mapping (the
        // CPU totals are sampled, so only the structural property is stable).
        prop_assert!(lazy.stats().parses <= eager.stats().parses);
        prop_assert!(lazy.stats().mitigation_rate() >= 0.0);
    }
}
