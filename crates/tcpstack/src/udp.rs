//! UDP associations and DNS transaction tracking.
//!
//! MopEye relays all UDP traffic but currently measures only DNS (§2.2):
//! the RTT is the time between the `send()` of a query and the `receive()`
//! of its response, matched by DNS transaction id. An association here is
//! the UDP analogue of a TCP client: the app-side flow plus the external
//! socket handle and the outstanding DNS transactions.

use std::collections::HashMap;

use mop_packet::{DnsMessage, FourTuple};

use crate::client::ExternalSocketHandle;

/// An outstanding DNS query awaiting its response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsTransaction {
    /// DNS transaction id.
    pub id: u16,
    /// The queried domain name.
    pub name: String,
    /// Nanosecond timestamp when the query was sent on the external socket.
    pub sent_ns: u64,
}

/// One UDP flow relayed by MopEye.
#[derive(Debug)]
pub struct UdpAssociation {
    flow: FourTuple,
    external: Option<ExternalSocketHandle>,
    pending_dns: Vec<DnsTransaction>,
    /// Datagrams relayed outwards.
    pub datagrams_out: u64,
    /// Datagrams relayed inwards.
    pub datagrams_in: u64,
    /// Nanosecond timestamp of the most recent activity, for idle expiry.
    pub last_activity_ns: u64,
}

impl UdpAssociation {
    /// Creates an association for `flow`.
    pub fn new(flow: FourTuple) -> Self {
        Self {
            flow,
            external: None,
            pending_dns: Vec::new(),
            datagrams_out: 0,
            datagrams_in: 0,
            last_activity_ns: 0,
        }
    }

    /// The flow this association relays.
    pub fn flow(&self) -> FourTuple {
        self.flow
    }

    /// True if this flow talks to the DNS port.
    pub fn is_dns(&self) -> bool {
        self.flow.dst.port == 53 || self.flow.src.port == 53
    }

    /// Binds the external socket handle.
    pub fn attach_external(&mut self, handle: ExternalSocketHandle) {
        self.external = Some(handle);
    }

    /// The external socket handle, if attached.
    pub fn external(&self) -> Option<ExternalSocketHandle> {
        self.external
    }

    /// Records an outgoing datagram; if it parses as a DNS query, starts a
    /// transaction stamped with `sent_ns`.
    pub fn on_outgoing(&mut self, payload: &[u8], sent_ns: u64) -> Option<&DnsTransaction> {
        self.datagrams_out += 1;
        self.last_activity_ns = sent_ns;
        if !self.is_dns() {
            return None;
        }
        let msg = DnsMessage::parse(payload).ok()?;
        if msg.flags.response {
            return None;
        }
        let name = msg.queried_name().unwrap_or_default().to_string();
        self.pending_dns.push(DnsTransaction { id: msg.id, name, sent_ns });
        self.pending_dns.last()
    }

    /// Records an incoming datagram; if it parses as a DNS response matching
    /// a pending query, completes the transaction and returns it with the
    /// measured RTT in nanoseconds.
    pub fn on_incoming(&mut self, payload: &[u8], received_ns: u64) -> Option<(DnsTransaction, u64)> {
        self.datagrams_in += 1;
        self.last_activity_ns = received_ns;
        if !self.is_dns() {
            return None;
        }
        let msg = DnsMessage::parse(payload).ok()?;
        if !msg.flags.response {
            return None;
        }
        let idx = self.pending_dns.iter().position(|t| t.id == msg.id)?;
        let tx = self.pending_dns.remove(idx);
        let rtt = received_ns.saturating_sub(tx.sent_ns);
        Some((tx, rtt))
    }

    /// Number of queries still awaiting a response.
    pub fn pending_dns_count(&self) -> usize {
        self.pending_dns.len()
    }
}

/// The registry of live UDP associations, keyed by flow.
#[derive(Debug, Default)]
pub struct UdpRegistry {
    associations: HashMap<FourTuple, UdpAssociation>,
}

impl UdpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with room for `capacity` concurrent
    /// associations (shard-sized pre-allocation, like
    /// [`crate::ClientRegistry::with_capacity`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { associations: HashMap::with_capacity(capacity) }
    }

    /// Resets the registry to its just-constructed state, keeping the table
    /// allocation.
    pub fn reset(&mut self) {
        self.associations.clear();
    }

    /// Returns the association for `flow`, creating it if absent.
    pub fn get_or_create(&mut self, flow: FourTuple) -> &mut UdpAssociation {
        self.associations.entry(flow).or_insert_with(|| UdpAssociation::new(flow))
    }

    /// Looks up an association.
    pub fn get(&self, flow: FourTuple) -> Option<&UdpAssociation> {
        self.associations.get(&flow)
    }

    /// Removes associations idle since before `cutoff_ns`. Returns how many
    /// were expired.
    pub fn expire_idle(&mut self, cutoff_ns: u64) -> usize {
        let before = self.associations.len();
        self.associations.retain(|_, a| a.last_activity_ns >= cutoff_ns);
        before - self.associations.len()
    }

    /// Number of live associations.
    pub fn len(&self) -> usize {
        self.associations.len()
    }

    /// True if there are no live associations.
    pub fn is_empty(&self) -> bool {
        self.associations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;
    use std::net::Ipv4Addr;

    fn dns_flow() -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, 41000), Endpoint::v4(192, 168, 1, 1, 53))
    }

    fn other_flow() -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, 41001), Endpoint::v4(3, 3, 3, 3, 4500))
    }

    #[test]
    fn dns_query_response_measures_rtt() {
        let mut assoc = UdpAssociation::new(dns_flow());
        assert!(assoc.is_dns());
        let query = DnsMessage::query(0x77, "e3.whatsapp.net");
        let started = assoc.on_outgoing(&query.to_bytes(), 1_000_000).cloned();
        assert_eq!(started.as_ref().map(|t| t.name.as_str()), Some("e3.whatsapp.net"));
        assert_eq!(assoc.pending_dns_count(), 1);
        let answer = DnsMessage::answer(&query, &[Ipv4Addr::new(158, 85, 5, 197)], 300);
        let (tx, rtt) = assoc.on_incoming(&answer.to_bytes(), 43_000_000).unwrap();
        assert_eq!(tx.id, 0x77);
        assert_eq!(rtt, 42_000_000);
        assert_eq!(assoc.pending_dns_count(), 0);
        assert_eq!(assoc.datagrams_out, 1);
        assert_eq!(assoc.datagrams_in, 1);
    }

    #[test]
    fn mismatched_transaction_ids_do_not_complete() {
        let mut assoc = UdpAssociation::new(dns_flow());
        let query = DnsMessage::query(1, "a.example");
        assoc.on_outgoing(&query.to_bytes(), 0);
        let other = DnsMessage::query(2, "a.example");
        let answer = DnsMessage::answer(&other, &[], 60);
        assert!(assoc.on_incoming(&answer.to_bytes(), 10).is_none());
        assert_eq!(assoc.pending_dns_count(), 1);
    }

    #[test]
    fn non_dns_flows_are_relayed_but_not_measured() {
        let mut assoc = UdpAssociation::new(other_flow());
        assert!(!assoc.is_dns());
        assert!(assoc.on_outgoing(&[1, 2, 3], 5).is_none());
        assert!(assoc.on_incoming(&[4, 5, 6], 9).is_none());
        assert_eq!(assoc.datagrams_out, 1);
        assert_eq!(assoc.datagrams_in, 1);
        assert_eq!(assoc.last_activity_ns, 9);
    }

    #[test]
    fn garbage_payload_on_dns_port_is_ignored() {
        let mut assoc = UdpAssociation::new(dns_flow());
        assert!(assoc.on_outgoing(&[0xff; 3], 5).is_none());
        assert!(assoc.on_incoming(&[0xff; 3], 9).is_none());
        assert_eq!(assoc.pending_dns_count(), 0);
    }

    #[test]
    fn queries_are_not_treated_as_responses() {
        let mut assoc = UdpAssociation::new(dns_flow());
        let query = DnsMessage::query(9, "x.example");
        assoc.on_outgoing(&query.to_bytes(), 0);
        // Receiving a *query* (not a response) must not complete the pending
        // transaction.
        assert!(assoc.on_incoming(&query.to_bytes(), 10).is_none());
        assert_eq!(assoc.pending_dns_count(), 1);
    }

    #[test]
    fn registry_creates_tracks_and_expires() {
        let mut reg = UdpRegistry::new();
        assert!(reg.is_empty());
        reg.get_or_create(dns_flow()).last_activity_ns = 100;
        reg.get_or_create(other_flow()).last_activity_ns = 900;
        assert_eq!(reg.len(), 2);
        assert!(reg.get(dns_flow()).is_some());
        assert_eq!(reg.expire_idle(500), 1);
        assert_eq!(reg.len(), 1);
        assert!(reg.get(dns_flow()).is_none());
        assert!(reg.get(other_flow()).is_some());
        let external = reg.get_or_create(other_flow());
        external.attach_external(3);
        assert_eq!(external.external(), Some(3));
        assert_eq!(external.flow(), other_flow());
    }
}
