//! Cancellable per-connection timer bindings.
//!
//! The engine arms wall-clock work against a connection — today an idle
//! timeout that reaps connections whose app went silent, tomorrow
//! retransmission and keepalive timers — and must be able to *cancel* that
//! work in O(1) when the connection makes progress or tears down. The
//! scheduler that owns the actual timers lives above this crate
//! (`mop_simnet`'s timing wheel), and this crate deliberately does not
//! depend on the simulator, so a connection stores its timers as opaque
//! tokens: the packed form of a `mop_simnet::TimerHandle`
//! (`TimerHandle::token()` / `TimerHandle::from_token()`), exactly the way
//! [`crate::client::ExternalSocketHandle`] mirrors a socket id.
//!
//! Tokens are single-owner: arming replaces (and returns) the previous
//! token so the caller can cancel the superseded timer, and disarming takes
//! the token out. A token held here is therefore always the connection's
//! *live* timer — the state the engine's mass schedule/cancel churn (the
//! flash-crowd scenario) exercises.

/// An opaque, cancellable reference to one scheduled timer, as issued by the
/// scheduler that owns it.
pub type TimerToken = u64;

/// The timers a connection can have armed. One slot per timer kind; each
/// slot holds at most one live token.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConnTimers {
    idle: Option<TimerToken>,
    rto: Option<TimerToken>,
}

impl ConnTimers {
    /// No timers armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms (or re-arms) the idle timer, returning the superseded token so
    /// the caller can cancel it with the owning scheduler.
    pub fn arm_idle(&mut self, token: TimerToken) -> Option<TimerToken> {
        self.idle.replace(token)
    }

    /// Disarms the idle timer, returning its token for cancellation.
    pub fn disarm_idle(&mut self) -> Option<TimerToken> {
        self.idle.take()
    }

    /// The live idle-timer token, if one is armed.
    pub fn idle(&self) -> Option<TimerToken> {
        self.idle
    }

    /// Arms (or re-arms) the retransmission timer, returning the superseded
    /// token so the caller can cancel it with the owning scheduler.
    pub fn arm_rto(&mut self, token: TimerToken) -> Option<TimerToken> {
        self.rto.replace(token)
    }

    /// Disarms the retransmission timer, returning its token for cancellation.
    pub fn disarm_rto(&mut self) -> Option<TimerToken> {
        self.rto.take()
    }

    /// The live retransmission-timer token, if one is armed.
    pub fn rto(&self) -> Option<TimerToken> {
        self.rto
    }

    /// True if any timer is armed.
    pub fn any_armed(&self) -> bool {
        self.idle.is_some() || self.rto.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_replaces_and_returns_the_previous_token() {
        let mut timers = ConnTimers::new();
        assert!(!timers.any_armed());
        assert_eq!(timers.arm_idle(7), None);
        assert_eq!(timers.idle(), Some(7));
        assert_eq!(timers.arm_idle(9), Some(7), "superseded token comes back");
        assert_eq!(timers.disarm_idle(), Some(9));
        assert_eq!(timers.disarm_idle(), None);
        assert!(!timers.any_armed());
    }

    #[test]
    fn rto_slot_is_independent_of_the_idle_slot() {
        let mut timers = ConnTimers::new();
        assert_eq!(timers.arm_rto(3), None);
        assert!(timers.any_armed());
        assert_eq!(timers.arm_idle(4), None);
        assert_eq!(timers.arm_rto(5), Some(3));
        assert_eq!(timers.rto(), Some(5));
        assert_eq!(timers.idle(), Some(4));
        assert_eq!(timers.disarm_rto(), Some(5));
        assert!(timers.any_armed(), "idle timer still live");
        assert_eq!(timers.disarm_idle(), Some(4));
        assert!(!timers.any_armed());
        assert_eq!(timers.disarm_rto(), None);
    }
}
