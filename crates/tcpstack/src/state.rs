//! Connection states for MopEye's user-space TCP stack.
//!
//! MopEye is always the *passive* end of the internal connection: the app
//! initiates with a SYN, MopEye answers with a SYN/ACK — but only after the
//! external socket connection to the real server has been established, so
//! that the app's handshake time reflects the real path (§2.3). The state
//! set is therefore the server-side subset of RFC 793 plus an explicit
//! "waiting for the external connect" state.

/// The state of one internal (app ↔ MopEye) TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// No connection yet; the next segment we expect is a SYN.
    Listen,
    /// A SYN arrived and the external socket connect is in flight; the
    /// SYN/ACK to the app is deferred until the external connect completes.
    SynReceivedPendingExternal,
    /// The SYN/ACK has been sent; waiting for the app's final ACK.
    SynAckSent,
    /// The three-way handshake is complete; data flows both ways.
    Established,
    /// The app sent FIN (half close); we have ACKed it and relay a half-close
    /// to the external socket. Data from the server may still be forwarded.
    CloseWait,
    /// We sent our FIN after the server side finished; waiting for the app's
    /// last ACK.
    LastAck,
    /// We initiated the close towards the app (server closed first); waiting
    /// for the app's FIN/ACK.
    FinWait,
    /// Both sides have closed; the connection lingers briefly for stray
    /// segments before removal.
    TimeWait,
    /// The connection was aborted (RST in either direction).
    Reset,
    /// The connection has been fully torn down and can be removed.
    Closed,
}

impl TcpState {
    /// Returns true if application data from the app may be relayed outward
    /// in this state.
    pub fn accepts_app_data(self) -> bool {
        matches!(self, TcpState::Established | TcpState::FinWait)
    }

    /// Returns true if data from the server may still be forwarded to the app.
    pub fn accepts_server_data(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// Returns true if the connection is over and its client object can be
    /// dropped from the registry.
    pub fn is_terminal(self) -> bool {
        matches!(self, TcpState::Closed | TcpState::Reset | TcpState::TimeWait)
    }

    /// Returns true if the handshake (internal and external) is still in
    /// progress.
    pub fn is_handshaking(self) -> bool {
        matches!(
            self,
            TcpState::Listen | TcpState::SynReceivedPendingExternal | TcpState::SynAckSent
        )
    }

    /// A short label for logs and debugging dumps.
    pub fn label(self) -> &'static str {
        match self {
            TcpState::Listen => "LISTEN",
            TcpState::SynReceivedPendingExternal => "SYN_RCVD*",
            TcpState::SynAckSent => "SYN_RCVD",
            TcpState::Established => "ESTABLISHED",
            TcpState::CloseWait => "CLOSE_WAIT",
            TcpState::LastAck => "LAST_ACK",
            TcpState::FinWait => "FIN_WAIT",
            TcpState::TimeWait => "TIME_WAIT",
            TcpState::Reset => "RESET",
            TcpState::Closed => "CLOSED",
        }
    }
}

impl std::fmt::Display for TcpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_acceptance_matrix() {
        assert!(TcpState::Established.accepts_app_data());
        assert!(TcpState::Established.accepts_server_data());
        assert!(TcpState::CloseWait.accepts_server_data());
        assert!(!TcpState::CloseWait.accepts_app_data());
        assert!(TcpState::FinWait.accepts_app_data());
        assert!(!TcpState::FinWait.accepts_server_data());
        assert!(!TcpState::Listen.accepts_app_data());
        assert!(!TcpState::Reset.accepts_server_data());
    }

    #[test]
    fn terminal_and_handshaking_classification() {
        for s in [TcpState::Closed, TcpState::Reset, TcpState::TimeWait] {
            assert!(s.is_terminal(), "{s} should be terminal");
            assert!(!s.is_handshaking());
        }
        for s in [TcpState::Listen, TcpState::SynReceivedPendingExternal, TcpState::SynAckSent] {
            assert!(s.is_handshaking(), "{s} should be handshaking");
            assert!(!s.is_terminal());
        }
        assert!(!TcpState::Established.is_terminal());
        assert!(!TcpState::Established.is_handshaking());
    }

    #[test]
    fn labels_are_unique() {
        let all = [
            TcpState::Listen,
            TcpState::SynReceivedPendingExternal,
            TcpState::SynAckSent,
            TcpState::Established,
            TcpState::CloseWait,
            TcpState::LastAck,
            TcpState::FinWait,
            TcpState::TimeWait,
            TcpState::Reset,
            TcpState::Closed,
        ];
        let mut labels: Vec<_> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
