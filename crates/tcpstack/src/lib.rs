//! The user-space TCP/IP stack MopEye terminates app connections against.
//!
//! Because MopEye relays traffic through regular sockets (no root, no raw
//! sockets), it cannot see the kernel's Transmission Control Block for the
//! external connections, so it maintains its own TCP state machine for the
//! *internal* connections — the ones between the apps and the TUN interface
//! (§2.3 of the paper). This crate implements that state machine and the
//! plumbing around it:
//!
//! * [`state`] — the connection states and transition rules,
//! * [`machine`] — [`machine::TcpStateMachine`], which consumes tunnel
//!   segments from the app and socket-side events from the relay, and emits
//!   response packets plus relay actions,
//! * [`client`] — [`client::TcpClient`] and [`client::ClientRegistry`], the
//!   two-way splice between a state machine and its external socket,
//! * [`recovery`] — [`recovery::RecoveryState`], the sender-side loss
//!   recovery (RFC 6298 RTT estimation and retransmission timing, SACK
//!   scoreboard, fast retransmit) plus the pluggable congestion controllers
//!   ([`recovery::Reno`], [`recovery::Cubic`]) used when the simulated
//!   network injects data-path faults,
//! * [`timer`] — [`timer::ConnTimers`], the cancellable per-connection
//!   timer tokens the engine's scheduler arms and disarms,
//! * [`udp`] — UDP associations and the DNS transaction tracking used for
//!   DNS RTT measurement.

pub mod client;
pub mod machine;
pub mod recovery;
pub mod state;
pub mod timer;
pub mod udp;

pub use client::{ClientRegistry, TcpClient};
pub use machine::{RelayAction, SegmentRef, SegmentVerdict, TcpStateMachine};
pub use recovery::{
    AckReaction, CongestionAlgo, CongestionControl, Cubic, RecoveryState, Reno, Retransmit,
    RttEstimator,
};
pub use state::TcpState;
pub use timer::{ConnTimers, TimerToken};
pub use udp::{DnsTransaction, UdpAssociation, UdpRegistry};
