//! Loss recovery for the relayed data path: RFC 6298 retransmission timing,
//! dup-ACK / SACK-driven fast retransmit, and pluggable congestion control.
//!
//! The §3.4 relay normally sends server data towards the app without waiting
//! for ACKs, because the tunnel is a loss-free in-memory link. When the
//! simulated access network injects data-path faults (drop / reorder /
//! duplicate), that assumption breaks and the relay must behave like a real
//! sender: keep the in-flight segments, estimate the path RTT (RFC 6298),
//! retransmit on three duplicate ACKs or on an RTO, and take SACK blocks
//! (RFC 2018) into account so only the actual holes are resent.
//!
//! [`RecoveryState`] is that sender-side machinery for one connection. The
//! engine creates it **only** for flows that can experience faults; on clean
//! networks no state exists, no randomness is drawn and no timers are armed,
//! which keeps fault-free runs bit-identical to builds without recovery.
//!
//! Congestion control is deliberately narrow in scope: the relay's normal
//! transmission stays unpaced (the paper's no-flow-control tunnel), and the
//! congestion window only paces *recovery* — the spacing of retransmitted
//! segments is `srtt / cwnd`, so [`Reno`]'s halving and [`Cubic`]'s
//! 0.7-factor-plus-cubic-growth produce measurably different loss recovery
//! without touching the fault-free fast path.
//!
//! Like the rest of this crate, nothing here depends on the simulator:
//! times are plain nanosecond counts and the engine owns the actual timers
//! (via [`crate::timer::ConnTimers`] tokens).

use std::collections::VecDeque;

use mop_packet::SackBlocks;

/// Number of duplicate ACKs that triggers a fast retransmit.
pub const DUP_ACK_THRESHOLD: u32 = 3;

/// `ack` acknowledges everything strictly before `seq`? (Wrapping compare:
/// true iff `a` is at or before `b` in sequence space.)
fn seq_le(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) < 0x8000_0000
}

/// True iff `a` is strictly before `b` in sequence space.
fn seq_lt(a: u32, b: u32) -> bool {
    a != b && seq_le(a, b)
}

/// RFC 6298 round-trip estimator: SRTT / RTTVAR smoothing plus the
/// exponential backoff applied while retransmissions are outstanding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttEstimator {
    srtt_ns: f64,
    rttvar_ns: f64,
    rto_ns: u64,
    /// Exponential-backoff multiplier applied after each RTO fire; reset by
    /// the next valid RTT sample (Karn's algorithm restarts the estimate).
    backoff: u32,
    seeded: bool,
}

/// RFC 6298 lower bound on the retransmission timeout.
pub const MIN_RTO_NS: u64 = 1_000_000_000;
/// RFC 6298 upper bound on the retransmission timeout.
pub const MAX_RTO_NS: u64 = 60_000_000_000;

impl RttEstimator {
    /// An unseeded estimator using the RFC 6298 initial RTO of 1 s.
    pub fn new() -> Self {
        Self { srtt_ns: 0.0, rttvar_ns: 0.0, rto_ns: MIN_RTO_NS, backoff: 0, seeded: false }
    }

    /// Feeds one RTT measurement (RFC 6298 §2): the first sample initialises
    /// `SRTT = R`, `RTTVAR = R/2`; later samples apply the 1/8 and 1/4
    /// smoothing gains. Any valid sample also resets the backoff.
    pub fn sample(&mut self, rtt_ns: u64) {
        let r = rtt_ns as f64;
        if !self.seeded {
            self.srtt_ns = r;
            self.rttvar_ns = r / 2.0;
            self.seeded = true;
        } else {
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (self.srtt_ns - r).abs();
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * r;
        }
        self.backoff = 0;
        self.rto_ns = ((self.srtt_ns + (4.0 * self.rttvar_ns).max(1.0)) as u64)
            .clamp(MIN_RTO_NS, MAX_RTO_NS);
    }

    /// The current retransmission timeout, including backoff.
    pub fn rto_ns(&self) -> u64 {
        self.rto_ns.saturating_mul(1u64 << self.backoff.min(6)).min(MAX_RTO_NS)
    }

    /// Doubles the RTO (RFC 6298 §5.5), called when the timer fires.
    pub fn back_off(&mut self) {
        self.backoff = self.backoff.saturating_add(1);
    }

    /// The smoothed RTT, if at least one sample has been fed.
    pub fn srtt_ns(&self) -> Option<u64> {
        self.seeded.then_some(self.srtt_ns as u64)
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// Sender-side congestion control, consulted only on the recovery path.
pub trait CongestionControl {
    /// Algorithm name, for reports.
    fn name(&self) -> &'static str;
    /// Current congestion window in segments (≥ 1).
    fn cwnd(&self) -> u32;
    /// `n` segments left the network acknowledged in order.
    fn on_ack(&mut self, n: u32, now_ns: u64);
    /// A fast retransmit fired (triple duplicate ACK).
    fn on_fast_retransmit(&mut self, now_ns: u64);
    /// The retransmission timer fired.
    fn on_rto(&mut self, now_ns: u64);
}

/// TCP Reno: slow start, additive increase, multiplicative (halving) decrease.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Starts at the modern initial window of 10 segments.
    pub fn new() -> Self {
        Self { cwnd: 10.0, ssthresh: f64::from(u16::MAX) }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn cwnd(&self) -> u32 {
        (self.cwnd as u32).max(1)
    }

    fn on_ack(&mut self, n: u32, _now_ns: u64) {
        let n = f64::from(n);
        if self.cwnd < self.ssthresh {
            self.cwnd += n;
        } else {
            self.cwnd += n / self.cwnd;
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }
}

/// CUBIC (RFC 8312, simplified): the window grows as a cubic function of the
/// time since the last congestion event, anchored at the window where the
/// loss happened, with a gentler 0.7 multiplicative decrease than Reno.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    k_secs: f64,
    epoch_start_ns: Option<u64>,
}

/// CUBIC scaling constant.
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative-decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// Starts at the modern initial window of 10 segments.
    pub fn new() -> Self {
        Self {
            cwnd: 10.0,
            ssthresh: f64::from(u16::MAX),
            w_max: 10.0,
            k_secs: 0.0,
            epoch_start_ns: None,
        }
    }

    fn enter_congestion(&mut self, factor: f64) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * factor).max(1.0);
        self.ssthresh = self.cwnd.max(2.0);
        self.k_secs = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        self.epoch_start_ns = None;
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn cwnd(&self) -> u32 {
        (self.cwnd as u32).max(1)
    }

    fn on_ack(&mut self, n: u32, now_ns: u64) {
        if self.cwnd < self.ssthresh {
            self.cwnd += f64::from(n);
            return;
        }
        let epoch = *self.epoch_start_ns.get_or_insert(now_ns);
        let t_secs = now_ns.saturating_sub(epoch) as f64 / 1e9;
        let offset = t_secs - self.k_secs;
        let target = self.w_max + CUBIC_C * offset * offset * offset;
        if target > self.cwnd {
            // Step towards the cubic target, at most one segment per ACK.
            self.cwnd += (target - self.cwnd).min(f64::from(n));
        } else {
            // TCP-friendly floor: creep up like Reno does.
            self.cwnd += f64::from(n) * 0.01;
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.enter_congestion(CUBIC_BETA);
    }

    fn on_rto(&mut self, _now_ns: u64) {
        self.enter_congestion(0.0);
        self.cwnd = 1.0;
    }
}

/// Which congestion controller a scenario runs with — plain data so configs
/// can carry it around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionAlgo {
    /// TCP Reno (halving decrease).
    #[default]
    Reno,
    /// CUBIC (cubic growth, 0.7 decrease).
    Cubic,
}

impl CongestionAlgo {
    /// A short label for reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            CongestionAlgo::Reno => "reno",
            CongestionAlgo::Cubic => "cubic",
        }
    }

    fn build(self) -> Cc {
        match self {
            CongestionAlgo::Reno => Cc::Reno(Reno::new()),
            CongestionAlgo::Cubic => Cc::Cubic(Cubic::new()),
        }
    }
}

/// Enum dispatch over the congestion controllers (no boxing on the datapath).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cc {
    Reno(Reno),
    Cubic(Cubic),
}

impl Cc {
    fn as_dyn_mut(&mut self) -> &mut dyn CongestionControl {
        match self {
            Cc::Reno(r) => r,
            Cc::Cubic(c) => c,
        }
    }

    fn cwnd(&self) -> u32 {
        match self {
            Cc::Reno(r) => r.cwnd(),
            Cc::Cubic(c) => c.cwnd(),
        }
    }
}

/// One data segment the relay has sent towards the app and not yet seen
/// acknowledged.
#[derive(Debug, Clone, PartialEq)]
struct SentSegment {
    seq: u32,
    payload: Vec<u8>,
    sent_at_ns: u64,
    retransmitted: bool,
    sacked: bool,
}

impl SentSegment {
    fn end(&self) -> u32 {
        self.seq.wrapping_add(self.payload.len() as u32)
    }
}

/// A segment the relay must resend, with the pacing delay congestion control
/// assigns to it (0 for the first segment of a burst).
#[derive(Debug, Clone, PartialEq)]
pub struct Retransmit {
    /// Sequence number of the lost segment.
    pub seq: u32,
    /// Its payload, byte-identical to the original transmission.
    pub payload: Vec<u8>,
    /// Extra delay before this retransmission leaves, from the `srtt / cwnd`
    /// recovery pacing.
    pub delay_ns: u64,
}

/// What one incoming ACK did to the recovery state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AckReaction {
    /// Segments to resend now (fast retransmit and SACK-hole fills).
    pub retransmits: Vec<Retransmit>,
    /// True if this ACK triggered a fast retransmit (third duplicate).
    pub fast_retransmit: bool,
    /// In-flight segments newly covered by this ACK's SACK blocks.
    pub newly_sacked: u32,
    /// True if the ACK advanced `snd_una` (new data acknowledged).
    pub advanced: bool,
    /// True if nothing remains in flight (the RTO timer can be disarmed).
    pub all_acked: bool,
}

/// Sender-side loss recovery for one relayed connection.
#[derive(Debug)]
pub struct RecoveryState {
    estimator: RttEstimator,
    cc: Cc,
    inflight: VecDeque<SentSegment>,
    snd_una: u32,
    dup_acks: u32,
    /// Highest sequence sent when fast recovery began; recovery ends once
    /// `snd_una` passes it.
    recovery_point: Option<u32>,
    retransmits_total: u64,
    fast_retransmits_total: u64,
    rto_fires_total: u64,
    sacked_total: u64,
}

impl RecoveryState {
    /// Creates recovery state for one connection. `connect_rtt_ns` seeds the
    /// RTT estimator from the handshake measurement, when available.
    pub fn new(algo: CongestionAlgo, connect_rtt_ns: Option<u64>) -> Self {
        let mut estimator = RttEstimator::new();
        if let Some(rtt) = connect_rtt_ns {
            estimator.sample(rtt);
        }
        Self {
            estimator,
            cc: algo.build(),
            inflight: VecDeque::new(),
            snd_una: 0,
            dup_acks: 0,
            recovery_point: None,
            retransmits_total: 0,
            fast_retransmits_total: 0,
            rto_fires_total: 0,
            sacked_total: 0,
        }
    }

    /// Records one transmitted data segment. Returns true if this was the
    /// first segment in flight (the caller should arm the RTO timer).
    pub fn on_data_sent(&mut self, seq: u32, payload: &[u8], now_ns: u64) -> bool {
        let was_empty = self.inflight.is_empty();
        if was_empty {
            self.snd_una = seq;
        }
        self.inflight.push_back(SentSegment {
            seq,
            payload: payload.to_vec(),
            sent_at_ns: now_ns,
            retransmitted: false,
            sacked: false,
        });
        was_empty
    }

    /// Processes an ACK from the app: advances `snd_una`, applies SACK
    /// blocks, counts duplicates, and decides what (if anything) to resend.
    pub fn on_ack(&mut self, ack: u32, sack: Option<SackBlocks>, now_ns: u64) -> AckReaction {
        let mut reaction = AckReaction::default();
        if self.inflight.is_empty() {
            return reaction;
        }
        // Cumulative ACK: drop fully covered segments, sampling the RTT from
        // the newest one that was never retransmitted (Karn's algorithm).
        let mut newly_acked = 0u32;
        let mut rtt_sample = None;
        while let Some(front) = self.inflight.front() {
            if !seq_le(front.end(), ack) {
                break;
            }
            if !front.retransmitted {
                rtt_sample = Some(now_ns.saturating_sub(front.sent_at_ns));
            }
            newly_acked += 1;
            self.inflight.pop_front();
        }
        if newly_acked > 0 {
            reaction.advanced = true;
            self.snd_una = ack;
            self.dup_acks = 0;
            if let Some(rtt) = rtt_sample {
                self.estimator.sample(rtt);
            }
            self.cc.as_dyn_mut().on_ack(newly_acked, now_ns);
            if let Some(point) = self.recovery_point {
                if seq_le(point, ack) {
                    self.recovery_point = None;
                }
            }
        }
        // SACK blocks: mark received-above-the-hole segments.
        if let Some(blocks) = sack {
            for &(start, end) in blocks.as_slice() {
                for seg in self.inflight.iter_mut() {
                    if !seg.sacked && seq_le(start, seg.seq) && seq_le(seg.end(), end) {
                        seg.sacked = true;
                        reaction.newly_sacked += 1;
                    }
                }
            }
            self.sacked_total += u64::from(reaction.newly_sacked);
        }
        // Duplicate ACK accounting and fast retransmit.
        if !reaction.advanced && ack == self.snd_una && !self.inflight.is_empty() {
            self.dup_acks += 1;
            let entering = self.dup_acks == DUP_ACK_THRESHOLD && self.recovery_point.is_none();
            if entering {
                reaction.fast_retransmit = true;
                self.fast_retransmits_total += 1;
                self.recovery_point = self.inflight.back().map(SentSegment::end);
                self.cc.as_dyn_mut().on_fast_retransmit(now_ns);
                self.queue_hole_retransmits(&mut reaction, 1);
            } else if self.recovery_point.is_some() && reaction.newly_sacked > 0 {
                // Later dup-ACKs with fresh SACK news: fill more holes, as
                // many as the post-decrease window paces out.
                let budget = (self.cc.cwnd() / 2).max(1);
                self.queue_hole_retransmits(&mut reaction, budget as usize);
            }
        }
        reaction.all_acked = self.inflight.is_empty();
        reaction
    }

    /// Queues up to `limit` un-SACKed, not-yet-retransmitted holes for
    /// resend, pacing them `srtt / cwnd` apart.
    fn queue_hole_retransmits(&mut self, reaction: &mut AckReaction, limit: usize) {
        let pace = self.recovery_pace_ns();
        let mut queued = reaction.retransmits.len() as u64;
        for seg in self.inflight.iter_mut() {
            if reaction.retransmits.len() >= limit {
                break;
            }
            if seg.sacked || seg.retransmitted {
                continue;
            }
            if let Some(point) = self.recovery_point {
                if !seq_lt(seg.seq, point) {
                    break;
                }
            }
            seg.retransmitted = true;
            self.retransmits_total += 1;
            reaction.retransmits.push(Retransmit {
                seq: seg.seq,
                payload: seg.payload.clone(),
                delay_ns: pace * queued,
            });
            queued += 1;
        }
    }

    /// The retransmission timer fired: resend the earliest outstanding
    /// segment, back the timer off, and collapse the window.
    pub fn on_rto(&mut self, now_ns: u64) -> Option<Retransmit> {
        let seg = self.inflight.iter_mut().find(|s| !s.sacked)?;
        seg.retransmitted = true;
        let retransmit = Retransmit { seq: seg.seq, payload: seg.payload.clone(), delay_ns: 0 };
        self.rto_fires_total += 1;
        self.retransmits_total += 1;
        self.estimator.back_off();
        self.cc.as_dyn_mut().on_rto(now_ns);
        self.dup_acks = 0;
        self.recovery_point = None;
        Some(retransmit)
    }

    /// The recovery pacing interval: the smoothed RTT spread over the
    /// congestion window. This is where the choice of controller changes the
    /// shape of loss recovery.
    fn recovery_pace_ns(&self) -> u64 {
        let srtt = self.estimator.srtt_ns().unwrap_or(MIN_RTO_NS / 10);
        srtt / u64::from(self.cc.cwnd().max(1))
    }

    /// The current RTO, including exponential backoff.
    pub fn rto_ns(&self) -> u64 {
        self.estimator.rto_ns()
    }

    /// True while unacknowledged segments remain.
    pub fn has_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Total segments retransmitted (fast retransmit + RTO paths).
    pub fn retransmits_total(&self) -> u64 {
        self.retransmits_total
    }

    /// Total fast-retransmit events.
    pub fn fast_retransmits_total(&self) -> u64 {
        self.fast_retransmits_total
    }

    /// Total RTO fires.
    pub fn rto_fires_total(&self) -> u64 {
        self.rto_fires_total
    }

    /// Total in-flight segments covered by received SACK blocks.
    pub fn sacked_total(&self) -> u64 {
        self.sacked_total
    }

    /// The congestion controller's name.
    pub fn cc_name(&self) -> &'static str {
        match &self.cc {
            Cc::Reno(_) => "reno",
            Cc::Cubic(_) => "cubic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn sack(ranges: &[(u32, u32)]) -> Option<SackBlocks> {
        Some(SackBlocks::new(ranges))
    }

    #[test]
    fn estimator_follows_rfc_6298() {
        let mut est = RttEstimator::new();
        assert_eq!(est.rto_ns(), MIN_RTO_NS, "initial RTO is 1 s");
        est.sample(100 * MS);
        // First sample: SRTT = 100 ms, RTTVAR = 50 ms, RTO = 300 ms → clamped
        // to the 1 s floor.
        assert_eq!(est.srtt_ns(), Some(100 * MS));
        assert_eq!(est.rto_ns(), MIN_RTO_NS);
        est.back_off();
        assert_eq!(est.rto_ns(), 2 * MIN_RTO_NS);
        est.back_off();
        assert_eq!(est.rto_ns(), 4 * MIN_RTO_NS);
        // A fresh sample resets the backoff.
        est.sample(120 * MS);
        assert_eq!(est.rto_ns(), MIN_RTO_NS);
        // A huge sample raises the RTO above the floor.
        est.sample(2_000 * MS);
        assert!(est.rto_ns() > MIN_RTO_NS);
        assert!(est.rto_ns() <= MAX_RTO_NS);
    }

    #[test]
    fn in_order_acks_never_retransmit() {
        let mut rs = RecoveryState::new(CongestionAlgo::Reno, Some(50 * MS));
        assert!(rs.on_data_sent(1000, &[0; 100], 0), "first segment arms the timer");
        assert!(!rs.on_data_sent(1100, &[0; 100], MS));
        let r1 = rs.on_ack(1100, None, 60 * MS);
        assert!(r1.advanced && !r1.all_acked && r1.retransmits.is_empty());
        let r2 = rs.on_ack(1200, None, 61 * MS);
        assert!(r2.advanced && r2.all_acked);
        assert_eq!(rs.retransmits_total(), 0);
        assert!(!rs.has_inflight());
    }

    #[test]
    fn triple_dup_ack_fast_retransmits_the_hole() {
        let mut rs = RecoveryState::new(CongestionAlgo::Reno, Some(50 * MS));
        for i in 0..5u32 {
            rs.on_data_sent(1000 + i * 100, &[i as u8; 100], u64::from(i) * MS);
        }
        // Segment 1000..1100 was dropped; the receiver SACKs the rest.
        let mut reaction = AckReaction::default();
        for dup in 1..=3u32 {
            let end = 1100 + dup * 100;
            reaction = rs.on_ack(1000, sack(&[(1100, end)]), (10 + u64::from(dup)) * MS);
        }
        assert!(reaction.fast_retransmit);
        assert_eq!(reaction.retransmits.len(), 1);
        assert_eq!(reaction.retransmits[0].seq, 1000);
        assert_eq!(reaction.retransmits[0].payload, vec![0u8; 100]);
        assert_eq!(rs.fast_retransmits_total(), 1);
        assert!(rs.sacked_total() >= 3);
        // The retransmission arrives; the receiver ACKs everything.
        let done = rs.on_ack(1500, None, 20 * MS);
        assert!(done.advanced && done.all_acked);
    }

    #[test]
    fn rto_resends_earliest_and_backs_off() {
        let mut rs = RecoveryState::new(CongestionAlgo::Reno, Some(50 * MS));
        rs.on_data_sent(500, &[1; 40], 0);
        rs.on_data_sent(540, &[2; 40], 0);
        let before = rs.rto_ns();
        let r = rs.on_rto(before).expect("something in flight");
        assert_eq!(r.seq, 500);
        assert_eq!(rs.rto_fires_total(), 1);
        assert!(rs.rto_ns() > before, "RTO doubled");
        // Karn: the retransmitted segment's ACK must not poison the RTT.
        let est_before = rs.rto_ns();
        let reaction = rs.on_ack(540, None, 10_000 * MS);
        assert!(reaction.advanced);
        assert_eq!(rs.rto_ns(), est_before, "no sample from a retransmitted segment");
        // An RTO with everything SACKed resends nothing.
        let mut all_sacked = RecoveryState::new(CongestionAlgo::Reno, None);
        all_sacked.on_data_sent(9000, &[0; 10], 0);
        all_sacked.on_ack(9000, sack(&[(9000, 9010)]), MS);
        assert_eq!(all_sacked.on_rto(2 * MS), None);
    }

    #[test]
    fn reno_and_cubic_recover_with_different_windows() {
        let grow = |algo: CongestionAlgo| {
            let mut rs = RecoveryState::new(algo, Some(50 * MS));
            let mut seq = 0u32;
            // Grow the window with clean round trips, then take a loss.
            for round in 0..30u64 {
                rs.on_data_sent(seq, &[0; 100], round * 100 * MS);
                seq = seq.wrapping_add(100);
                rs.on_ack(seq, None, round * 100 * MS + 50 * MS);
            }
            rs.on_data_sent(seq, &[0; 100], 3_000 * MS);
            for dup in 0..3u64 {
                rs.on_ack(seq, None, (3_010 + dup) * MS);
            }
            rs
        };
        let reno = grow(CongestionAlgo::Reno);
        let cubic = grow(CongestionAlgo::Cubic);
        assert_eq!(reno.cc_name(), "reno");
        assert_eq!(cubic.cc_name(), "cubic");
        assert_eq!(reno.fast_retransmits_total(), 1);
        assert_eq!(cubic.fast_retransmits_total(), 1);
        // Reno halves, CUBIC multiplies by 0.7: the windows differ, so the
        // recovery pacing differs.
        assert_ne!(reno.cc.cwnd(), cubic.cc.cwnd());
        assert!(cubic.cc.cwnd() > reno.cc.cwnd());
    }

    #[test]
    fn cubic_grows_towards_w_max_after_a_loss() {
        let mut cubic = Cubic::new();
        // Leave slow start, then lose.
        cubic.ssthresh = 1.0;
        cubic.cwnd = 100.0;
        cubic.on_fast_retransmit(0);
        let after_loss = cubic.cwnd();
        assert_eq!(after_loss, 70);
        // ACKs over the next simulated seconds climb back towards w_max.
        let mut now = 0u64;
        for _ in 0..2000 {
            now += 10 * MS;
            cubic.on_ack(1, now);
        }
        assert!(cubic.cwnd() > after_loss);
        assert!(cubic.cwnd() >= 95, "cwnd {} should approach w_max 100", cubic.cwnd());
    }

    #[test]
    fn dup_acks_without_sack_news_do_not_spray_retransmits() {
        let mut rs = RecoveryState::new(CongestionAlgo::Reno, Some(10 * MS));
        for i in 0..4u32 {
            rs.on_data_sent(i * 100, &[0; 100], 0);
        }
        for _ in 0..3 {
            rs.on_ack(0, sack(&[(100, 400)]), MS);
        }
        assert_eq!(rs.retransmits_total(), 1, "only the hole is resent");
        // A fourth duplicate with no new SACK information resends nothing.
        let quiet = rs.on_ack(0, sack(&[(100, 400)]), 2 * MS);
        assert!(quiet.retransmits.is_empty());
    }
}
