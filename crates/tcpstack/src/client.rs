//! TCP client objects and the connection registry.
//!
//! The paper splices the internal connection (terminated by the state
//! machine) and the external connection (a regular socket) by creating a *TCP
//! client object* that wraps the socket instance and holds a reference to the
//! state machine, while the state machine holds a reference back to the
//! client (§2.3, "two-way referencing"). In Rust the same splice is expressed
//! by ownership: the [`TcpClient`] owns its [`TcpStateMachine`] and records
//! the identifier of its external socket; the [`ClientRegistry`] is the
//! "cached TCP client list" the paper removes clients from on RST.

use std::collections::HashMap;

use mop_packet::FourTuple;

use crate::machine::TcpStateMachine;
use crate::recovery::RecoveryState;
use crate::state::TcpState;
use crate::timer::ConnTimers;

/// Identifier of the external socket a client relays into. This mirrors
/// `mop_simnet::SocketId` without introducing a dependency on the simulator,
/// so the stack stays usable against a real socket backend.
pub type ExternalSocketHandle = u64;

/// One spliced connection: the app-side state machine plus the external
/// socket handle and the per-connection bookkeeping the engine needs.
#[derive(Debug)]
pub struct TcpClient {
    machine: TcpStateMachine,
    external: Option<ExternalSocketHandle>,
    /// UID of the owning app, filled in by the (lazy) packet-to-app mapper.
    pub app_uid: Option<u32>,
    /// Package name of the owning app, resolved from the UID.
    pub app_package: Option<String>,
    /// Nanosecond timestamp just before `connect()` was invoked.
    pub connect_started_ns: Option<u64>,
    /// Nanosecond timestamp just after `connect()` returned.
    pub connect_finished_ns: Option<u64>,
    /// The connection's armed timers (idle timeout and retransmission),
    /// stored as opaque cancellable tokens of the engine's scheduler.
    pub timers: ConnTimers,
    /// Loss-recovery state (RTT estimation, in-flight tracking, congestion
    /// control). `None` on networks where no data-path fault can fire, so
    /// clean runs carry no recovery bookkeeping at all.
    pub recovery: Option<RecoveryState>,
}

impl TcpClient {
    /// Creates a client for `flow` with the given initial sequence number
    /// towards the app.
    pub fn new(flow: FourTuple, our_isn: u32) -> Self {
        Self {
            machine: TcpStateMachine::new(flow, our_isn),
            external: None,
            app_uid: None,
            app_package: None,
            connect_started_ns: None,
            connect_finished_ns: None,
            timers: ConnTimers::new(),
            recovery: None,
        }
    }

    /// The connection four-tuple.
    pub fn flow(&self) -> FourTuple {
        self.machine.flow()
    }

    /// The state machine (immutable).
    pub fn machine(&self) -> &TcpStateMachine {
        &self.machine
    }

    /// The state machine (mutable) — the engine drives it through this.
    pub fn machine_mut(&mut self) -> &mut TcpStateMachine {
        &mut self.machine
    }

    /// The state of the internal connection.
    pub fn state(&self) -> TcpState {
        self.machine.state()
    }

    /// Binds the external socket handle once the socket has been created.
    pub fn attach_external(&mut self, handle: ExternalSocketHandle) {
        self.external = Some(handle);
    }

    /// The external socket handle, if one has been attached.
    pub fn external(&self) -> Option<ExternalSocketHandle> {
        self.external
    }

    /// The measured connect duration in nanoseconds, when both timestamps are
    /// present. This is the per-app RTT sample MopEye reports.
    pub fn connect_duration_ns(&self) -> Option<u64> {
        Some(self.connect_finished_ns?.saturating_sub(self.connect_started_ns?))
    }

    /// True once the app has been identified (the lazy mapper has run).
    pub fn is_mapped(&self) -> bool {
        self.app_uid.is_some()
    }
}

/// The cached TCP client list, keyed by four-tuple.
#[derive(Debug, Default)]
pub struct ClientRegistry {
    clients: HashMap<FourTuple, TcpClient>,
    isn_counter: u32,
    created_total: u64,
    removed_total: u64,
}

impl ClientRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self { clients: HashMap::new(), isn_counter: 0x1000, created_total: 0, removed_total: 0 }
    }

    /// Creates an empty registry with room for `capacity` concurrent clients,
    /// so a shard expecting a known fleet share pays its table growth up
    /// front instead of on the packet path.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            clients: HashMap::with_capacity(capacity),
            isn_counter: 0x1000,
            created_total: 0,
            removed_total: 0,
        }
    }

    /// Resets the registry to its just-constructed state, keeping the table
    /// allocation: the ISN counter restarts so a reused registry hands out
    /// the same sequence numbers a fresh one would.
    pub fn reset(&mut self) {
        self.clients.clear();
        self.isn_counter = 0x1000;
        self.created_total = 0;
        self.removed_total = 0;
    }

    /// Returns the client for `flow`, creating it (with a fresh ISN) if absent.
    pub fn get_or_create(&mut self, flow: FourTuple) -> &mut TcpClient {
        if !self.clients.contains_key(&flow) {
            self.isn_counter = self.isn_counter.wrapping_add(0x01_0000);
            self.created_total += 1;
            self.clients.insert(flow, TcpClient::new(flow, self.isn_counter));
        }
        self.clients.get_mut(&flow).expect("just inserted")
    }

    /// Looks up an existing client.
    pub fn get(&self, flow: FourTuple) -> Option<&TcpClient> {
        self.clients.get(&flow)
    }

    /// Looks up an existing client mutably.
    pub fn get_mut(&mut self, flow: FourTuple) -> Option<&mut TcpClient> {
        self.clients.get_mut(&flow)
    }

    /// Finds the client using the given external socket handle.
    pub fn find_by_external(&mut self, handle: ExternalSocketHandle) -> Option<&mut TcpClient> {
        self.clients.values_mut().find(|c| c.external() == Some(handle))
    }

    /// Removes the client for `flow` (the RST / teardown path).
    pub fn remove(&mut self, flow: FourTuple) -> Option<TcpClient> {
        let removed = self.clients.remove(&flow);
        if removed.is_some() {
            self.removed_total += 1;
        }
        removed
    }

    /// Removes every client whose connection has reached a terminal state.
    /// Returns how many were removed.
    pub fn sweep_terminal(&mut self) -> usize {
        let before = self.clients.len();
        self.clients.retain(|_, c| !c.state().is_terminal());
        let removed = before - self.clients.len();
        self.removed_total += removed as u64;
        removed
    }

    /// Number of live clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True if no clients are live.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Total clients ever created.
    pub fn created_total(&self) -> u64 {
        self.created_total
    }

    /// Total clients removed.
    pub fn removed_total(&self) -> u64 {
        self.removed_total
    }

    /// Iterates over live clients.
    pub fn iter(&self) -> impl Iterator<Item = (&FourTuple, &TcpClient)> {
        self.clients.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::{Endpoint, PacketBuilder};

    fn flow(port: u16) -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, port), Endpoint::v4(31, 13, 79, 251, 443))
    }

    #[test]
    fn get_or_create_is_idempotent_per_flow() {
        let mut reg = ClientRegistry::new();
        let isn_a = {
            let c = reg.get_or_create(flow(1));
            c.attach_external(77);
            c.machine().state()
        };
        assert_eq!(isn_a, TcpState::Listen);
        assert_eq!(reg.len(), 1);
        // Second lookup returns the same client (external handle persists).
        assert_eq!(reg.get_or_create(flow(1)).external(), Some(77));
        assert_eq!(reg.created_total(), 1);
        reg.get_or_create(flow(2));
        assert_eq!(reg.created_total(), 2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn distinct_flows_get_distinct_isns() {
        let mut reg = ClientRegistry::new();
        let a = reg.get_or_create(flow(1)).machine().state();
        let b = reg.get_or_create(flow(2)).machine().state();
        assert_eq!(a, b); // Both Listen; ISNs are internal, just ensure no panic.
        assert_ne!(flow(1), flow(2));
    }

    #[test]
    fn connect_duration_requires_both_timestamps() {
        let mut c = TcpClient::new(flow(9), 1);
        assert_eq!(c.connect_duration_ns(), None);
        c.connect_started_ns = Some(1_000_000);
        assert_eq!(c.connect_duration_ns(), None);
        c.connect_finished_ns = Some(5_000_000);
        assert_eq!(c.connect_duration_ns(), Some(4_000_000));
        assert!(!c.is_mapped());
        c.app_uid = Some(10123);
        c.app_package = Some("com.whatsapp".into());
        assert!(c.is_mapped());
    }

    #[test]
    fn find_by_external_locates_the_right_client() {
        let mut reg = ClientRegistry::new();
        reg.get_or_create(flow(1)).attach_external(100);
        reg.get_or_create(flow(2)).attach_external(200);
        assert_eq!(reg.find_by_external(200).unwrap().flow(), flow(2));
        assert!(reg.find_by_external(999).is_none());
    }

    #[test]
    fn remove_and_sweep() {
        let mut reg = ClientRegistry::new();
        reg.get_or_create(flow(1));
        reg.get_or_create(flow(2));
        assert!(reg.remove(flow(1)).is_some());
        assert!(reg.remove(flow(1)).is_none());
        assert_eq!(reg.removed_total(), 1);
        // Drive the second client to a terminal state and sweep it.
        {
            let c = reg.get_or_create(flow(2));
            let rst = PacketBuilder::new(flow(2).src, flow(2).dst).tcp_rst(1);
            c.machine_mut().on_tunnel_segment(rst.tcp().unwrap());
            assert!(c.state().is_terminal());
        }
        assert_eq!(reg.sweep_terminal(), 1);
        assert!(reg.is_empty());
        assert_eq!(reg.removed_total(), 2);
        assert_eq!(reg.iter().count(), 0);
    }
}
