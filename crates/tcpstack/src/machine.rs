//! The per-connection TCP state machine.
//!
//! One [`TcpStateMachine`] exists per internal connection. It consumes two
//! kinds of input:
//!
//! * tunnel segments arriving from the app ([`TcpStateMachine::on_tunnel_segment`]),
//! * socket-side events arriving from the external connection
//!   (`on_external_*` methods).
//!
//! For each input it returns the packets that must be written back to the
//! tunnel (towards the app) and the [`RelayAction`]s the engine must apply to
//! the external socket. The processing rules follow §2.3 of the paper:
//! the SYN/ACK to the app is deferred until the external connect completes,
//! data from the app is buffered towards the socket, pure ACKs are discarded,
//! FIN triggers a half close, RST tears everything down. On the reverse path
//! data is forwarded to the app without waiting for ACKs and with the MSS and
//! window tuning of §3.4 (1460-byte segments, 64 KiB window, no congestion or
//! flow control inside the tunnel).

use mop_packet::tcp::MOPEYE_MSS;
use mop_packet::{Endpoint, FourTuple, Packet, PacketBuilder, TcpFlags, TcpSegment, TcpSegmentView};

use crate::state::TcpState;

/// A borrowed view of the tunnel-segment fields the relay decision needs.
///
/// Both the owned [`TcpSegment`] and the zero-copy [`TcpSegmentView`] convert
/// into this, so the state machine runs the exact same logic whether the
/// caller parsed a packet into owned structs or is borrowing straight from
/// the TUN buffer.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef<'a> {
    /// Sequence number.
    pub seq: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Application payload.
    pub payload: &'a [u8],
    /// MSS option value, if the segment carries one.
    pub mss: Option<u16>,
}

impl<'a> From<&'a TcpSegment> for SegmentRef<'a> {
    fn from(seg: &'a TcpSegment) -> Self {
        Self { seq: seg.seq, flags: seg.flags, payload: &seg.payload, mss: seg.mss() }
    }
}

impl<'a> From<&TcpSegmentView<'a>> for SegmentRef<'a> {
    fn from(seg: &TcpSegmentView<'a>) -> Self {
        Self { seq: seg.seq(), flags: seg.flags(), payload: seg.payload(), mss: seg.mss() }
    }
}

/// An instruction for the relay engine, produced while processing a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayAction {
    /// Open the external socket connection to the app's destination.
    ConnectExternal {
        /// The remote server endpoint.
        dst: Endpoint,
    },
    /// Append these bytes to the external socket's write buffer and trigger a
    /// write event.
    RelayData {
        /// Application payload carried by the tunnel segment.
        bytes: Vec<u8>,
    },
    /// Half-close the external connection (the app sent FIN).
    HalfCloseExternal,
    /// Close the external connection immediately (RST or final teardown).
    CloseExternal,
    /// The connection is finished; the client object can be removed from the
    /// cached client list.
    RemoveClient,
}

/// Classification of a processed tunnel segment, used for relay statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentVerdict {
    /// A connection-opening SYN.
    Syn,
    /// A data segment carrying this many payload bytes.
    Data(usize),
    /// A pure ACK, discarded without relaying (§2.3).
    PureAckDiscarded,
    /// A FIN starting a half close.
    Fin,
    /// An RST aborting the connection.
    Rst,
    /// A retransmission of data we have already seen.
    Retransmission,
    /// A segment that does not fit the current state (ignored).
    OutOfState,
}

/// The user-space TCP state machine for one internal connection.
#[derive(Debug)]
pub struct TcpStateMachine {
    flow: FourTuple,
    state: TcpState,
    /// Next sequence number expected from the app.
    peer_next: u32,
    /// Next sequence number we will use towards the app.
    our_next: u32,
    /// MSS advertised by the app in its SYN (informational).
    peer_mss: Option<u16>,
    /// MSS we use when segmenting server data towards the app.
    our_mss: u16,
    to_app: PacketBuilder,
    bytes_from_app: u64,
    bytes_to_app: u64,
}

impl TcpStateMachine {
    /// Creates a machine for `flow` (oriented app → server) using `our_isn`
    /// as the initial sequence number towards the app.
    pub fn new(flow: FourTuple, our_isn: u32) -> Self {
        Self {
            flow,
            state: TcpState::Listen,
            peer_next: 0,
            our_next: our_isn,
            peer_mss: None,
            our_mss: MOPEYE_MSS,
            // Packets to the app travel server → app, i.e. the reverse flow.
            to_app: PacketBuilder::new(flow.dst, flow.src),
            bytes_from_app: 0,
            bytes_to_app: 0,
        }
    }

    /// The connection four-tuple (app → server orientation).
    pub fn flow(&self) -> FourTuple {
        self.flow
    }

    /// The current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The MSS the app advertised, if any.
    pub fn peer_mss(&self) -> Option<u16> {
        self.peer_mss
    }

    /// Total payload bytes received from the app.
    pub fn bytes_from_app(&self) -> u64 {
        self.bytes_from_app
    }

    /// Total payload bytes forwarded to the app.
    pub fn bytes_to_app(&self) -> u64 {
        self.bytes_to_app
    }

    /// Processes a tunnel segment from the app.
    pub fn on_tunnel_segment(
        &mut self,
        seg: &TcpSegment,
    ) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        self.on_segment(seg.into())
    }

    /// Processes a tunnel segment borrowed straight from the TUN buffer —
    /// the zero-copy entry point the relay's MainWorker uses.
    pub fn on_tunnel_segment_view(
        &mut self,
        seg: &TcpSegmentView<'_>,
    ) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        self.on_segment(seg.into())
    }

    /// Processes a tunnel segment given as a borrowed field view.
    pub fn on_segment(
        &mut self,
        seg: SegmentRef<'_>,
    ) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        if seg.flags.contains(TcpFlags::RST) {
            return self.on_app_rst();
        }
        if seg.flags.contains(TcpFlags::SYN) && !seg.flags.contains(TcpFlags::ACK) {
            return self.on_app_syn(seg);
        }
        if seg.flags.contains(TcpFlags::FIN) {
            return self.on_app_fin(seg);
        }
        if !seg.payload.is_empty() {
            return self.on_app_data(seg);
        }
        self.on_app_pure_ack(seg)
    }

    fn on_app_syn(&mut self, seg: SegmentRef<'_>) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        match self.state {
            TcpState::Listen => {
                self.peer_next = seg.seq.wrapping_add(1);
                self.peer_mss = seg.mss;
                self.state = TcpState::SynReceivedPendingExternal;
                (
                    Vec::new(),
                    vec![RelayAction::ConnectExternal { dst: self.flow.dst }],
                    SegmentVerdict::Syn,
                )
            }
            // A retransmitted SYN while the external connect is still pending:
            // keep waiting, nothing to send yet.
            TcpState::SynReceivedPendingExternal => {
                (Vec::new(), Vec::new(), SegmentVerdict::Retransmission)
            }
            // A retransmitted SYN after we already answered: resend SYN/ACK.
            TcpState::SynAckSent => {
                let syn_ack =
                    self.to_app.tcp_syn_ack(self.our_next.wrapping_sub(1), seg.seq);
                (vec![syn_ack], Vec::new(), SegmentVerdict::Retransmission)
            }
            _ => (Vec::new(), Vec::new(), SegmentVerdict::OutOfState),
        }
    }

    fn on_app_data(&mut self, seg: SegmentRef<'_>) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        // The app's ACK of our SYN/ACK may be piggy-backed on its first data
        // segment; promote to Established first.
        if self.state == TcpState::SynAckSent && seg.flags.contains(TcpFlags::ACK) {
            self.state = TcpState::Established;
        }
        if !self.state.accepts_app_data() {
            return (Vec::new(), Vec::new(), SegmentVerdict::OutOfState);
        }
        if seg.seq != self.peer_next {
            // Already-seen data (or a gap we do not track): re-ACK what we
            // have so the app's stack stops retransmitting.
            let ack = self.to_app.tcp_ack(self.our_next, self.peer_next);
            return (vec![ack], Vec::new(), SegmentVerdict::Retransmission);
        }
        let len = seg.payload.len();
        self.peer_next = self.peer_next.wrapping_add(len as u32);
        self.bytes_from_app += len as u64;
        (
            Vec::new(),
            vec![RelayAction::RelayData { bytes: seg.payload.to_vec() }],
            SegmentVerdict::Data(len),
        )
    }

    fn on_app_pure_ack(&mut self, seg: SegmentRef<'_>) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        match self.state {
            TcpState::SynAckSent if seg.flags.contains(TcpFlags::ACK) => {
                self.state = TcpState::Established;
                // The handshake-completing ACK still carries no data to relay.
                (Vec::new(), Vec::new(), SegmentVerdict::PureAckDiscarded)
            }
            TcpState::LastAck if seg.flags.contains(TcpFlags::ACK) => {
                self.state = TcpState::Closed;
                (Vec::new(), vec![RelayAction::RemoveClient], SegmentVerdict::PureAckDiscarded)
            }
            // Pure ACKs carry nothing worth relaying to the socket channel.
            _ => (Vec::new(), Vec::new(), SegmentVerdict::PureAckDiscarded),
        }
    }

    fn on_app_fin(&mut self, seg: SegmentRef<'_>) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        match self.state {
            TcpState::Established | TcpState::SynAckSent => {
                // Any data on the FIN segment is still relayed.
                let mut actions = Vec::new();
                if !seg.payload.is_empty() && seg.seq == self.peer_next {
                    self.peer_next = self.peer_next.wrapping_add(seg.payload.len() as u32);
                    self.bytes_from_app += seg.payload.len() as u64;
                    actions.push(RelayAction::RelayData { bytes: seg.payload.to_vec() });
                }
                self.peer_next = self.peer_next.wrapping_add(1);
                self.state = TcpState::CloseWait;
                actions.push(RelayAction::HalfCloseExternal);
                let ack = self.to_app.tcp_ack(self.our_next, self.peer_next);
                (vec![ack], actions, SegmentVerdict::Fin)
            }
            TcpState::FinWait => {
                // Server already closed; this FIN completes the shutdown.
                self.peer_next = self.peer_next.wrapping_add(1);
                self.state = TcpState::TimeWait;
                let ack = self.to_app.tcp_ack(self.our_next, self.peer_next);
                (
                    vec![ack],
                    vec![RelayAction::CloseExternal, RelayAction::RemoveClient],
                    SegmentVerdict::Fin,
                )
            }
            _ => (Vec::new(), Vec::new(), SegmentVerdict::OutOfState),
        }
    }

    fn on_app_rst(&mut self) -> (Vec<Packet>, Vec<RelayAction>, SegmentVerdict) {
        self.state = TcpState::Reset;
        (
            Vec::new(),
            vec![RelayAction::CloseExternal, RelayAction::RemoveClient],
            SegmentVerdict::Rst,
        )
    }

    /// The external socket connection has been established: complete the
    /// handshake with the app by sending the SYN/ACK (§2.3).
    pub fn on_external_connected(&mut self) -> Vec<Packet> {
        if self.state != TcpState::SynReceivedPendingExternal {
            return Vec::new();
        }
        let syn_ack = self.to_app.tcp_syn_ack(self.our_next, self.peer_next.wrapping_sub(1));
        self.our_next = self.our_next.wrapping_add(1);
        self.state = TcpState::SynAckSent;
        vec![syn_ack]
    }

    /// The external connect failed: abort the app's connection attempt.
    ///
    /// A refused connection is surfaced as an RST; a timeout sends nothing
    /// (the app's own SYN retransmissions will eventually give up, as they
    /// would without a relay in the path).
    pub fn on_external_connect_failed(&mut self, refused: bool) -> Vec<Packet> {
        self.state = TcpState::Reset;
        if refused {
            vec![self.to_app.tcp_rst_ack(self.our_next, self.peer_next)]
        } else {
            Vec::new()
        }
    }

    /// Data arrived from the external socket: forward it to the app in
    /// MSS-sized segments without waiting for ACKs (§3.4).
    pub fn on_external_data(&mut self, bytes: &[u8]) -> Vec<Packet> {
        if !self.state.accepts_server_data() || bytes.is_empty() {
            return Vec::new();
        }
        let mut packets = Vec::with_capacity(bytes.len() / usize::from(self.our_mss) + 1);
        for chunk in bytes.chunks(usize::from(self.our_mss)) {
            let pkt = self.to_app.tcp_data(self.our_next, self.peer_next, chunk.to_vec());
            self.our_next = self.our_next.wrapping_add(chunk.len() as u32);
            self.bytes_to_app += chunk.len() as u64;
            packets.push(pkt);
        }
        packets
    }

    /// Rebuilds a previously sent data segment for retransmission: same
    /// sequence number and payload, current ACK field. Used by the engine's
    /// loss-recovery path (fast retransmit / RTO); it does not advance
    /// `our_next` or the byte counters, since the bytes were already
    /// accounted for on first transmission.
    pub fn retransmit_data(&self, seq: u32, payload: Vec<u8>) -> Packet {
        self.to_app.tcp_data(seq, self.peer_next, payload)
    }

    /// The external socket finished writing relayed bytes: acknowledge the
    /// app's data (§2.3, socket write handling).
    pub fn on_external_write_complete(&mut self) -> Vec<Packet> {
        if self.state.is_handshaking() || self.state.is_terminal() {
            return Vec::new();
        }
        vec![self.to_app.tcp_ack(self.our_next, self.peer_next)]
    }

    /// The external socket closed (or was reset): propagate to the app.
    pub fn on_external_closed(&mut self, reset: bool) -> Vec<Packet> {
        if self.state.is_terminal() {
            return Vec::new();
        }
        if reset {
            self.state = TcpState::Reset;
            return vec![self.to_app.tcp_rst_ack(self.our_next, self.peer_next)];
        }
        match self.state {
            TcpState::Established | TcpState::SynAckSent => {
                let fin = self.to_app.tcp_fin(self.our_next, self.peer_next);
                self.our_next = self.our_next.wrapping_add(1);
                self.state = TcpState::FinWait;
                vec![fin]
            }
            TcpState::CloseWait => {
                let fin = self.to_app.tcp_fin(self.our_next, self.peer_next);
                self.our_next = self.our_next.wrapping_add(1);
                self.state = TcpState::LastAck;
                vec![fin]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;

    fn flow() -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
    }

    fn app_builder() -> PacketBuilder {
        PacketBuilder::new(flow().src, flow().dst)
    }

    fn syn_segment(seq: u32) -> TcpSegment {
        app_builder().tcp_syn(seq).tcp().unwrap().clone()
    }

    /// Drives the machine through SYN → external connected → app ACK.
    fn establish(machine: &mut TcpStateMachine, isn: u32) {
        let (pkts, actions, verdict) = machine.on_tunnel_segment(&syn_segment(isn));
        assert!(pkts.is_empty(), "SYN/ACK must wait for the external connect");
        assert_eq!(actions, vec![RelayAction::ConnectExternal { dst: flow().dst }]);
        assert_eq!(verdict, SegmentVerdict::Syn);
        let syn_ack = machine.on_external_connected();
        assert_eq!(syn_ack.len(), 1);
        assert!(syn_ack[0].tcp().unwrap().is_syn_ack());
        assert_eq!(syn_ack[0].tcp().unwrap().ack, isn.wrapping_add(1));
        let ack = app_builder().tcp_ack(isn + 1, syn_ack[0].tcp().unwrap().seq + 1);
        let (pkts, actions, verdict) = machine.on_tunnel_segment(ack.tcp().unwrap());
        assert!(pkts.is_empty() && actions.is_empty());
        assert_eq!(verdict, SegmentVerdict::PureAckDiscarded);
        assert_eq!(machine.state(), TcpState::Established);
    }

    #[test]
    fn handshake_is_deferred_until_external_connect() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
    }

    #[test]
    fn retransmitted_syn_before_external_connect_is_quiet() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        m.on_tunnel_segment(&syn_segment(5));
        let (pkts, actions, verdict) = m.on_tunnel_segment(&syn_segment(5));
        assert!(pkts.is_empty() && actions.is_empty());
        assert_eq!(verdict, SegmentVerdict::Retransmission);
    }

    #[test]
    fn retransmitted_syn_after_synack_resends_synack() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        m.on_tunnel_segment(&syn_segment(5));
        m.on_external_connected();
        let (pkts, _, verdict) = m.on_tunnel_segment(&syn_segment(5));
        assert_eq!(verdict, SegmentVerdict::Retransmission);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].tcp().unwrap().is_syn_ack());
    }

    #[test]
    fn app_data_is_relayed_and_tracked() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let data = app_builder().tcp_data(1001, 9001, b"GET / HTTP/1.1\r\n".to_vec());
        let (pkts, actions, verdict) = m.on_tunnel_segment(data.tcp().unwrap());
        assert!(pkts.is_empty(), "data is ACKed only after the socket write completes");
        assert_eq!(actions, vec![RelayAction::RelayData { bytes: b"GET / HTTP/1.1\r\n".to_vec() }]);
        assert_eq!(verdict, SegmentVerdict::Data(16));
        assert_eq!(m.bytes_from_app(), 16);
        let acks = m.on_external_write_complete();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].tcp().unwrap().ack, 1001 + 16);
    }

    #[test]
    fn piggybacked_ack_with_data_establishes_and_relays() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        m.on_tunnel_segment(&syn_segment(1000));
        m.on_external_connected();
        // The app skips the bare ACK and sends data directly.
        let data = app_builder().tcp_data(1001, 9001, vec![1, 2, 3]);
        let (_, actions, verdict) = m.on_tunnel_segment(data.tcp().unwrap());
        assert_eq!(verdict, SegmentVerdict::Data(3));
        assert_eq!(actions.len(), 1);
        assert_eq!(m.state(), TcpState::Established);
    }

    #[test]
    fn retransmitted_data_is_reacked_not_relayed() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let data = app_builder().tcp_data(1001, 9001, vec![7; 10]);
        m.on_tunnel_segment(data.tcp().unwrap());
        let (pkts, actions, verdict) = m.on_tunnel_segment(data.tcp().unwrap());
        assert_eq!(verdict, SegmentVerdict::Retransmission);
        assert!(actions.is_empty());
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].tcp().unwrap().ack, 1011);
        assert_eq!(m.bytes_from_app(), 10);
    }

    #[test]
    fn server_data_is_segmented_at_mss_without_waiting_for_acks() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let body = vec![0xab; 4000];
        let pkts = m.on_external_data(&body);
        assert_eq!(pkts.len(), 3); // 1460 + 1460 + 1080.
        assert_eq!(pkts[0].tcp().unwrap().payload.len(), 1460);
        assert_eq!(pkts[2].tcp().unwrap().payload.len(), 4000 - 2 * 1460);
        // Sequence numbers are contiguous.
        assert_eq!(pkts[1].tcp().unwrap().seq, pkts[0].tcp().unwrap().seq + 1460);
        assert_eq!(m.bytes_to_app(), 4000);
        // Receive window advertised to the app is the §3.4 maximum.
        assert_eq!(pkts[0].tcp().unwrap().window, 65_535);
    }

    #[test]
    fn app_fin_half_closes_and_server_close_finishes() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let fin = app_builder().tcp_fin(1001, 9001);
        let (pkts, actions, verdict) = m.on_tunnel_segment(fin.tcp().unwrap());
        assert_eq!(verdict, SegmentVerdict::Fin);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].tcp().unwrap().ack, 1002);
        assert_eq!(actions, vec![RelayAction::HalfCloseExternal]);
        assert_eq!(m.state(), TcpState::CloseWait);
        // Server data can still flow to the app while half closed.
        assert_eq!(m.on_external_data(&[1, 2, 3]).len(), 1);
        // When the server side closes we FIN the app and wait for its ACK.
        let fins = m.on_external_closed(false);
        assert_eq!(fins.len(), 1);
        assert!(fins[0].tcp().unwrap().flags.contains(TcpFlags::FIN));
        assert_eq!(m.state(), TcpState::LastAck);
        let last_ack = app_builder().tcp_ack(1002, fins[0].tcp().unwrap().seq + 1);
        let (_, actions, _) = m.on_tunnel_segment(last_ack.tcp().unwrap());
        assert_eq!(actions, vec![RelayAction::RemoveClient]);
        assert_eq!(m.state(), TcpState::Closed);
        assert!(m.state().is_terminal());
    }

    #[test]
    fn server_initiated_close_then_app_fin() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let fins = m.on_external_closed(false);
        assert_eq!(fins.len(), 1);
        assert_eq!(m.state(), TcpState::FinWait);
        // The app can still send data in FIN_WAIT (its direction is open).
        let data = app_builder().tcp_data(1001, 9002, vec![5; 4]);
        let (_, actions, verdict) = m.on_tunnel_segment(data.tcp().unwrap());
        assert_eq!(verdict, SegmentVerdict::Data(4));
        assert_eq!(actions.len(), 1);
        // Its FIN finishes the connection.
        let fin = app_builder().tcp_fin(1005, 9002);
        let (pkts, actions, _) = m.on_tunnel_segment(fin.tcp().unwrap());
        assert_eq!(pkts.len(), 1);
        assert!(actions.contains(&RelayAction::CloseExternal));
        assert!(actions.contains(&RelayAction::RemoveClient));
        assert_eq!(m.state(), TcpState::TimeWait);
    }

    #[test]
    fn app_rst_tears_down_immediately() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let rst = app_builder().tcp_rst(1001);
        let (pkts, actions, verdict) = m.on_tunnel_segment(rst.tcp().unwrap());
        assert!(pkts.is_empty());
        assert_eq!(verdict, SegmentVerdict::Rst);
        assert_eq!(actions, vec![RelayAction::CloseExternal, RelayAction::RemoveClient]);
        assert_eq!(m.state(), TcpState::Reset);
        // Nothing further is forwarded after a reset.
        assert!(m.on_external_data(&[1]).is_empty());
        assert!(m.on_external_closed(false).is_empty());
    }

    #[test]
    fn external_reset_is_propagated_as_rst() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let pkts = m.on_external_closed(true);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].tcp().unwrap().flags.contains(TcpFlags::RST));
        assert_eq!(m.state(), TcpState::Reset);
    }

    #[test]
    fn refused_external_connect_resets_the_app() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        m.on_tunnel_segment(&syn_segment(1));
        let pkts = m.on_external_connect_failed(true);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].tcp().unwrap().flags.contains(TcpFlags::RST));
        assert_eq!(m.state(), TcpState::Reset);
        let mut m2 = TcpStateMachine::new(flow(), 9000);
        m2.on_tunnel_segment(&syn_segment(1));
        assert!(m2.on_external_connect_failed(false).is_empty());
    }

    #[test]
    fn out_of_state_segments_are_ignored() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        // Data before any SYN.
        let data = app_builder().tcp_data(50, 0, vec![1]);
        let (pkts, actions, verdict) = m.on_tunnel_segment(data.tcp().unwrap());
        assert!(pkts.is_empty() && actions.is_empty());
        assert_eq!(verdict, SegmentVerdict::OutOfState);
        // FIN before any SYN.
        let fin = app_builder().tcp_fin(50, 0);
        let (_, _, verdict) = m.on_tunnel_segment(fin.tcp().unwrap());
        assert_eq!(verdict, SegmentVerdict::OutOfState);
    }

    #[test]
    fn retransmit_data_replays_the_segment_without_advancing_state() {
        let mut m = TcpStateMachine::new(flow(), 9000);
        establish(&mut m, 1000);
        let originals = m.on_external_data(&[0x5a; 100]);
        let sent = m.bytes_to_app();
        let next_before = m.our_next;
        let orig_tcp = originals[0].tcp().unwrap();
        let replay = m.retransmit_data(orig_tcp.seq, orig_tcp.payload.clone());
        assert_eq!(replay.to_bytes(), originals[0].to_bytes(), "byte-identical resend");
        assert_eq!(m.bytes_to_app(), sent, "counters untouched");
        assert_eq!(m.our_next, next_before, "sequence space untouched");
    }

    #[test]
    fn peer_mss_is_recorded() {
        let mut m = TcpStateMachine::new(flow(), 1);
        m.on_tunnel_segment(&syn_segment(10));
        assert_eq!(m.peer_mss(), Some(1460));
        assert_eq!(m.flow(), flow());
    }
}
