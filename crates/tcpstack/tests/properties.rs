//! Property-based tests for the user-space TCP state machine: it must never
//! panic, never relay data it has not been given, and keep its sequence-space
//! accounting consistent no matter what segment sequence an app throws at it.

use proptest::prelude::*;

use mop_packet::{Endpoint, FourTuple, PacketBuilder, TcpFlags};
use mop_tcpstack::{RelayAction, TcpStateMachine};

fn flow() -> FourTuple {
    FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40_000), Endpoint::v4(31, 13, 79, 251, 443))
}

/// The kinds of app-side inputs a fuzzed connection can produce.
#[derive(Debug, Clone)]
enum AppInput {
    Syn,
    Data(Vec<u8>),
    PureAck,
    Fin,
    Rst,
    ExternalConnected,
    ExternalData(usize),
    ExternalWriteComplete,
    ExternalClosed(bool),
}

fn arb_input() -> impl Strategy<Value = AppInput> {
    prop_oneof![
        2 => Just(AppInput::Syn),
        4 => proptest::collection::vec(any::<u8>(), 1..600).prop_map(AppInput::Data),
        3 => Just(AppInput::PureAck),
        2 => Just(AppInput::Fin),
        1 => Just(AppInput::Rst),
        3 => Just(AppInput::ExternalConnected),
        3 => (1usize..5_000).prop_map(AppInput::ExternalData),
        2 => Just(AppInput::ExternalWriteComplete),
        1 => any::<bool>().prop_map(AppInput::ExternalClosed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn state_machine_never_panics_and_never_invents_data(
        inputs in proptest::collection::vec(arb_input(), 1..60),
    ) {
        let app = PacketBuilder::new(flow().src, flow().dst);
        let mut machine = TcpStateMachine::new(flow(), 7_000);
        let mut app_seq = 1_000u32;
        let mut bytes_given: u64 = 0;
        let mut bytes_relayed: u64 = 0;
        let mut external_bytes_given: u64 = 0;
        for input in inputs {
            match input {
                AppInput::Syn => {
                    let pkt = app.tcp_syn(app_seq);
                    let (_, actions, _) = machine.on_tunnel_segment(pkt.tcp().unwrap());
                    let relays_data =
                        actions.iter().any(|a| matches!(a, RelayAction::RelayData { .. }));
                    prop_assert!(!relays_data);
                }
                AppInput::Data(payload) => {
                    bytes_given += payload.len() as u64;
                    let pkt = app.tcp_data(app_seq.wrapping_add(1), 0, payload);
                    let (_, actions, _) = machine.on_tunnel_segment(pkt.tcp().unwrap());
                    for action in actions {
                        if let RelayAction::RelayData { bytes } = action {
                            bytes_relayed += bytes.len() as u64;
                            app_seq = app_seq.wrapping_add(bytes.len() as u32);
                        }
                    }
                }
                AppInput::PureAck => {
                    let pkt = app.tcp_ack(app_seq.wrapping_add(1), 0);
                    let (packets, actions, _) = machine.on_tunnel_segment(pkt.tcp().unwrap());
                    // A pure ACK is never answered with data.
                    prop_assert!(packets.iter().all(|p| p.tcp().unwrap().payload.is_empty()));
                    let relays_data =
                        actions.iter().any(|a| matches!(a, RelayAction::RelayData { .. }));
                    prop_assert!(!relays_data);
                }
                AppInput::Fin => {
                    let pkt = app.tcp_fin(app_seq.wrapping_add(1), 0);
                    let _ = machine.on_tunnel_segment(pkt.tcp().unwrap());
                }
                AppInput::Rst => {
                    let pkt = app.tcp_rst(app_seq.wrapping_add(1));
                    let (_, actions, _) = machine.on_tunnel_segment(pkt.tcp().unwrap());
                    if !actions.is_empty() {
                        prop_assert!(actions.contains(&RelayAction::CloseExternal));
                    }
                }
                AppInput::ExternalConnected => {
                    let packets = machine.on_external_connected();
                    // At most one SYN/ACK, and only as a response to a SYN.
                    prop_assert!(packets.len() <= 1);
                }
                AppInput::ExternalData(len) => {
                    external_bytes_given += len as u64;
                    let body = vec![0xaa; len];
                    let packets = machine.on_external_data(&body);
                    // Forwarded segments respect the 1460-byte MSS of §3.4.
                    prop_assert!(packets.iter().all(|p| p.tcp().unwrap().payload.len() <= 1460));
                    let forwarded: usize = packets.iter().map(|p| p.tcp().unwrap().payload.len()).sum();
                    prop_assert!(forwarded == 0 || forwarded == len);
                }
                AppInput::ExternalWriteComplete => {
                    let _ = machine.on_external_write_complete();
                }
                AppInput::ExternalClosed(reset) => {
                    let _ = machine.on_external_closed(reset);
                }
            }
        }
        // The relay never invents app data out of thin air.
        prop_assert!(bytes_relayed <= bytes_given);
        prop_assert!(machine.bytes_from_app() <= bytes_given);
        prop_assert!(machine.bytes_to_app() <= external_bytes_given);
    }

    #[test]
    fn well_behaved_connection_always_completes(
        request in proptest::collection::vec(any::<u8>(), 1..800),
        response_len in 1usize..20_000,
        isn in any::<u32>(),
    ) {
        // The canonical lifecycle: SYN → external connect → ACK → data →
        // response → FIN → server close → last ACK. Whatever the sizes and
        // sequence numbers, the machine must end in a terminal state having
        // relayed everything exactly once.
        let app = PacketBuilder::new(flow().src, flow().dst);
        let mut machine = TcpStateMachine::new(flow(), 9_000);
        let syn = app.tcp_syn(isn);
        let (_, actions, _) = machine.on_tunnel_segment(syn.tcp().unwrap());
        prop_assert_eq!(actions.len(), 1);
        let syn_ack = machine.on_external_connected();
        prop_assert_eq!(syn_ack.len(), 1);
        let data = app.tcp_data(isn.wrapping_add(1), 0, request.clone());
        let (_, actions, _) = machine.on_tunnel_segment(data.tcp().unwrap());
        let relayed: usize = actions
            .iter()
            .map(|a| match a {
                RelayAction::RelayData { bytes } => bytes.len(),
                _ => 0,
            })
            .sum();
        prop_assert_eq!(relayed, request.len());
        let response = vec![0x55; response_len];
        let packets = machine.on_external_data(&response);
        let forwarded: usize = packets.iter().map(|p| p.tcp().unwrap().payload.len()).sum();
        prop_assert_eq!(forwarded, response_len);
        // App closes; server side follows; app's final ACK ends it.
        let fin = app.tcp_fin(isn.wrapping_add(1).wrapping_add(request.len() as u32), 0);
        let (acks, actions, _) = machine.on_tunnel_segment(fin.tcp().unwrap());
        prop_assert_eq!(acks.len(), 1);
        prop_assert!(actions.contains(&RelayAction::HalfCloseExternal));
        let fins = machine.on_external_closed(false);
        prop_assert_eq!(fins.len(), 1);
        let last_seq = fins[0].tcp().unwrap().seq.wrapping_add(1);
        let last_ack = app.tcp_ack(0, last_seq);
        let (_, actions, _) = machine.on_tunnel_segment(last_ack.tcp().unwrap());
        prop_assert!(actions.contains(&RelayAction::RemoveClient));
        prop_assert!(machine.state().is_terminal());
        prop_assert_eq!(machine.bytes_from_app(), request.len() as u64);
        prop_assert_eq!(machine.bytes_to_app(), response_len as u64);
    }

    #[test]
    fn forwarded_segments_have_contiguous_sequence_numbers(chunks in proptest::collection::vec(1usize..4_000, 1..12)) {
        let app = PacketBuilder::new(flow().src, flow().dst);
        let mut machine = TcpStateMachine::new(flow(), 100);
        machine.on_tunnel_segment(app.tcp_syn(1).tcp().unwrap());
        machine.on_external_connected();
        machine.on_tunnel_segment(app.tcp_ack(2, 101).tcp().unwrap());
        let mut expected_seq: Option<u32> = None;
        for chunk in chunks {
            for pkt in machine.on_external_data(&vec![1u8; chunk]) {
                let tcp = pkt.tcp().unwrap();
                if let Some(expected) = expected_seq {
                    prop_assert_eq!(tcp.seq, expected);
                }
                expected_seq = Some(tcp.seq.wrapping_add(tcp.payload.len() as u32));
                prop_assert!(tcp.flags.contains(TcpFlags::ACK));
            }
        }
    }
}

/// A model receiver for the recovery proptest: tracks the cumulative ACK
/// edge plus out-of-order segments, and reports up to four SACK ranges.
#[derive(Default)]
struct ModelReceiver {
    ack: u32,
    ooo: std::collections::BTreeMap<u32, usize>,
}

impl ModelReceiver {
    fn new(isn: u32) -> Self {
        Self { ack: isn, ooo: std::collections::BTreeMap::new() }
    }

    fn ingest(&mut self, seq: u32, len: usize) -> (u32, Option<mop_packet::SackBlocks>) {
        if seq == self.ack {
            self.ack = self.ack.wrapping_add(len as u32);
            while let Some(next_len) = self.ooo.remove(&self.ack) {
                self.ack = self.ack.wrapping_add(next_len as u32);
            }
        } else if seq.wrapping_sub(self.ack) < 0x8000_0000 {
            self.ooo.insert(seq, len);
        }
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for (&seq, &len) in &self.ooo {
            let end = seq.wrapping_add(len as u32);
            match ranges.last_mut() {
                Some(last) if last.1 == seq => last.1 = end,
                _ => ranges.push((seq, end)),
            }
        }
        ranges.truncate(4);
        let sack =
            if ranges.is_empty() { None } else { Some(mop_packet::SackBlocks::new(&ranges)) };
        (self.ack, sack)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Convergence: whatever finite drop / reorder / duplicate schedule the
    /// data path applies, the sender's recovery state must drain — every
    /// byte reaches the receiver and nothing stays in flight — via fast
    /// retransmit and RTO alone, for both congestion controllers.
    #[test]
    fn recovery_converges_under_random_drop_and_reorder(
        sizes in proptest::collection::vec(1usize..1_200, 1..12),
        // Per-delivery fates: 0 = deliver, 1 = drop, 2 = duplicate,
        // 3 = defer to the back of the queue (reordering). Once the
        // schedule is exhausted every delivery succeeds, so the network is
        // eventually fair and convergence is required, not hoped for.
        fates in proptest::collection::vec(0u8..4, 0..40),
        cubic in any::<bool>(),
    ) {
        use mop_tcpstack::{CongestionAlgo, RecoveryState};
        let algo = if cubic { CongestionAlgo::Cubic } else { CongestionAlgo::Reno };
        let mut recovery = RecoveryState::new(algo, Some(50_000_000));
        let mut receiver = ModelReceiver::new(5_000);
        let mut now: u64 = 0;
        let mut queue: std::collections::VecDeque<(u32, usize)> =
            std::collections::VecDeque::new();
        let mut seq = 5_000u32;
        let mut total = 0usize;
        for &len in &sizes {
            recovery.on_data_sent(seq, &vec![0u8; len], now);
            queue.push_back((seq, len));
            seq = seq.wrapping_add(len as u32);
            total += len;
        }
        let final_ack = seq;
        let mut fates = fates.into_iter();
        let mut steps = 0;
        while recovery.has_inflight() {
            steps += 1;
            prop_assert!(steps < 2_000, "recovery stuck: {total} bytes, {:?}", algo);
            now += 10_000_000;
            let Some((seg_seq, len)) = queue.pop_front() else {
                // Nothing left in the air but data still unacknowledged:
                // only the retransmission timer can make progress.
                let rt = recovery.on_rto(now);
                prop_assert!(rt.is_some(), "inflight but RTO found nothing to resend");
                let rt = rt.unwrap();
                queue.push_back((rt.seq, rt.payload.len()));
                continue;
            };
            match fates.next().unwrap_or(0) {
                1 => continue, // dropped on the floor
                2 => queue.push_back((seg_seq, len)), // duplicated: deliver now and later
                3 => {
                    // Deferred behind everything currently in the air.
                    queue.push_back((seg_seq, len));
                    continue;
                }
                _ => {}
            }
            let (ack, sack) = receiver.ingest(seg_seq, len);
            let reaction = recovery.on_ack(ack, sack, now);
            for rt in reaction.retransmits {
                queue.push_back((rt.seq, rt.payload.len()));
            }
        }
        prop_assert_eq!(receiver.ack, final_ack, "receiver missing bytes");
        prop_assert!(!recovery.has_inflight());
    }
}
