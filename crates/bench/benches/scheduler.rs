//! Scheduler bench: the timing wheel vs the binary heap.
//!
//! Two parts:
//!
//! * a criterion-timed microbench of the steady-state *hold* model — pop the
//!   earliest event, schedule a replacement at a random future offset — at
//!   1k / 10k / 100k / 1M pending events. This isolates the per-operation
//!   cost at a given occupancy: the heap pays O(log n) sift steps on a
//!   cache-hostile array, the wheel pays O(1) slot arithmetic regardless of
//!   how many timers are pending. A cancel-heavy variant times the wheel's
//!   O(1) `cancel` against schedule/cancel churn.
//! * the headline sweep printed to stderr: the rush-hour scenario (and the
//!   flash-crowd churn scenario with per-connection idle timers armed) run
//!   end-to-end on the wheel engine vs the reference heap engine, asserting
//!   identical digests while comparing wall time. `BENCH_pr5.json` records
//!   these numbers.
//!
//! `SCHED_BENCH_USERS` scales the end-to-end sweep (default 2_000 users).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mop_dataset::Scenario;
use mop_simnet::{SchedulerKind, SimDuration, SimTime, TimerScheduler};
use mopeye_core::{FleetConfig, FleetEngine};

/// A cheap deterministic offset stream (xorshift) for the hold model.
struct Offsets(u64);

impl Offsets {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn prefill(kind: SchedulerKind, pending: usize) -> (TimerScheduler<u64>, Offsets) {
    let mut sched = TimerScheduler::new(kind, SimDuration::from_nanos(1024));
    let mut offsets = Offsets(0x9e37_79b9_7f4a_7c15);
    for i in 0..pending as u64 {
        // Spread the initial population over ~100 ms of virtual time.
        let at = SimTime::from_nanos(offsets.next() % 100_000_000);
        sched.schedule(at, i);
    }
    (sched, offsets)
}

fn bench_hold_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_hold");
    group.sample_size(20);
    for &pending in &[1_000usize, 10_000, 100_000, 1_000_000] {
        for (label, kind) in [("wheel", SchedulerKind::Wheel), ("heap", SchedulerKind::Heap)] {
            let (mut sched, mut offsets) = prefill(kind, pending);
            group.bench_function(&format!("{label}_pop_schedule_{pending}"), |b| {
                b.iter(|| {
                    let (at, event) = sched.pop().expect("population stays constant");
                    // Replace the popped event at a random future offset, so
                    // occupancy holds steady at `pending`.
                    let next = at + SimDuration::from_nanos(offsets.next() % 10_000_000);
                    sched.schedule(next, event);
                    black_box(event);
                })
            });
        }
    }
    group.finish();

    // Schedule/cancel churn at 100k pending: the flash-crowd shape, where
    // almost every timer is cancelled before it fires.
    for (label, kind) in [("wheel", SchedulerKind::Wheel), ("heap", SchedulerKind::Heap)] {
        let (mut sched, mut offsets) = prefill(kind, 100_000);
        let now = sched.peek_time().unwrap_or(SimTime::ZERO);
        c.benchmark_group("scheduler_churn").sample_size(20).bench_function(
            &format!("{label}_schedule_cancel_100k"),
            |b| {
                b.iter(|| {
                    let at = now + SimDuration::from_nanos(offsets.next() % 10_000_000);
                    let handle = sched.schedule(at, 1);
                    black_box(sched.cancel(handle));
                })
            },
        );
    }
}

fn bench_end_to_end(_c: &mut Criterion) {
    let users: usize = std::env::var("SCHED_BENCH_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    // Rush hour: the PR3 fleet workload, timers off — pure event-loop cost.
    let rush = Scenario::rush_hour(users, 2017);
    let rush_flows = rush.generate();
    eprintln!("scheduler: rush-hour end-to-end, {} users, {} connections", users, rush_flows.len());
    let mut rush_walls = Vec::new();
    for (label, kind) in [("wheel", SchedulerKind::Wheel), ("heap", SchedulerKind::Heap)] {
        let fleet =
            FleetEngine::new(FleetConfig::new(1).with_scheduler(kind), rush.network());
        let started = std::time::Instant::now();
        let report = fleet.run(rush_flows.clone());
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "scheduler: rush-hour {label}: {wall:.2}s wall, {} events, digest {:016x}",
            report.merged.events_processed,
            report.digest()
        );
        rush_walls.push((label, wall, report.digest()));
    }
    assert_eq!(rush_walls[0].2, rush_walls[1].2, "wheel and heap digests must match");
    eprintln!(
        "scheduler: rush-hour heap/wheel wall ratio: {:.3}",
        rush_walls[1].1 / rush_walls[0].1
    );

    // Flash crowd: churny short flows with per-connection idle timers armed,
    // so the run is dominated by mass schedule/cancel.
    let crowd = Scenario::flash_crowd(users, 2017);
    let crowd_flows = crowd.generate();
    eprintln!(
        "scheduler: flash-crowd end-to-end, {} users, {} connections, idle timers on",
        users,
        crowd_flows.len()
    );
    let mut crowd_walls = Vec::new();
    for (label, kind) in [("wheel", SchedulerKind::Wheel), ("heap", SchedulerKind::Heap)] {
        let fleet = FleetEngine::new(
            FleetConfig::new(1)
                .with_scheduler(kind)
                .with_idle_timeout(SimDuration::from_secs(30)),
            crowd.network(),
        );
        let started = std::time::Instant::now();
        let report = fleet.run(crowd_flows.clone());
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "scheduler: flash-crowd {label}: {wall:.2}s wall, {} events processed, {} scheduled, digest {:016x}",
            report.merged.events_processed,
            report.merged.events_scheduled,
            report.digest()
        );
        crowd_walls.push((label, wall, report.digest()));
    }
    assert_eq!(crowd_walls[0].2, crowd_walls[1].2, "wheel and heap digests must match");
    eprintln!(
        "scheduler: flash-crowd heap/wheel wall ratio: {:.3}",
        crowd_walls[1].1 / crowd_walls[0].1
    );
}

criterion_group!(benches, bench_hold_model, bench_end_to_end);
criterion_main!(benches);
