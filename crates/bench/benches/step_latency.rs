//! Step-latency bench: warm resident fleet vs cold per-step construction.
//!
//! The control plane's steady-state serving cost is one `fleet.step` — and
//! before PR 10 every step paid a fresh `FleetEngine` per scenario: thread
//! spawns, pool and ring allocation, wheel and slab warmup. This bench
//! puts a number on what residency saves. Both paths run the *same* small
//! flow batch over the same network at 4 shards:
//!
//! * **cold** — `FleetEngine::new(..).run(..)` per step (spawn + construct
//!   + run + teardown), the PR 9 plane's behaviour;
//! * **warm** — one [`ResidentFleet`], `run_next` per step (workers parked
//!   on their rings, engines reset in place).
//!
//! The headline block also checks the residency invariants the acceptance
//! bar names: cold and warm digests bit-identical, `threads_spawned`
//! constant across every warm run, and zero buffer-pool allocations in
//! warm steps after warmup (the pools recycle, never grow). With
//! `--features profiling` it additionally prints the warm run's per-phase
//! wall-clock table.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mop_dataset::Scenario;
use mopeye_core::{FleetConfig, FleetEngine, ResidentFleet};

const SHARDS: usize = 4;

fn bench_step_latency(c: &mut Criterion) {
    // Small on purpose: the steady-state step of a long-lived server runs
    // a fraction of a scenario per tick, so fixed per-step overhead (the
    // thing residency removes) dominates exactly like this.
    let scenario = Scenario::rush_hour(60, 2017);
    let flows = scenario.generate();
    let network = scenario.network();
    let config = FleetConfig::new(SHARDS).with_seed(77);

    let mut group = c.benchmark_group("step_latency");
    group.sample_size(10);
    group.bench_function("cold_4shards", |b| {
        b.iter(|| FleetEngine::new(config.clone(), network.clone()).run(flows.clone()))
    });
    {
        // Scoped so the criterion fleet is gone before the headline block —
        // a second fleet's parked workers must not share the timing.
        let mut resident = ResidentFleet::new(config.clone());
        resident.run_next(&network, flows.clone()); // Warmup: first run constructs.
        group.bench_function("warm_4shards", |b| {
            b.iter(|| resident.run_next(&network, flows.clone()))
        });
    }
    group.finish();

    // ----- headline: mean step latency + residency invariants --------------
    // The steady-state regime: a long-lived server's step runs the few
    // flows due this epoch, so fixed per-step overhead — what residency
    // removes — dominates. A small batch makes that regime explicit.
    let scenario = Scenario::rush_hour(6, 2017);
    let flows = scenario.generate();
    let network = scenario.network();
    let steps = 30usize;
    let cold_reference = FleetEngine::new(config.clone(), network.clone()).run(flows.clone());
    let started = Instant::now();
    for _ in 0..steps {
        let report = FleetEngine::new(config.clone(), network.clone()).run(flows.clone());
        assert_eq!(report.digest(), cold_reference.digest());
    }
    let cold_ms = started.elapsed().as_secs_f64() * 1e3 / steps as f64;

    let mut resident = ResidentFleet::new(config.clone());
    let warm_reference = resident.run_next(&network, flows.clone()); // Warmup run.
    assert_eq!(
        warm_reference.digest(),
        cold_reference.digest(),
        "resident run must be bit-identical to a fresh engine"
    );
    let spawned_after_warmup = resident.threads_spawned();
    let started = Instant::now();
    let mut last = None;
    for _ in 0..steps {
        let report = resident.run_next(&network, flows.clone());
        assert_eq!(report.digest(), cold_reference.digest());
        assert_eq!(
            resident.threads_spawned(),
            spawned_after_warmup,
            "warm steps must spawn no threads"
        );
        assert_eq!(
            report.merged.buffer_pool.allocations, 0,
            "warm steps must run entirely on recycled pool buffers"
        );
        assert_eq!(
            report.merged.socket_read_pool.allocations, 0,
            "warm steps must run entirely on recycled read buffers"
        );
        last = Some(report);
    }
    let warm_ms = started.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let last = last.expect("steps > 0");

    eprintln!(
        "step_latency: {} flows, {SHARDS} shards, {steps} steps; cold {cold_ms:.2} ms/step, \
         warm {warm_ms:.2} ms/step ({:.1}x), digest {:016x}",
        flows.len(),
        cold_ms / warm_ms,
        cold_reference.digest(),
    );
    eprintln!(
        "step_latency: warm invariants: threads_spawned {} (constant), buffer-pool \
         allocations 0, pool reuses {}",
        spawned_after_warmup, last.merged.buffer_pool.reuses,
    );
    let table = mop_simnet::profiling::render_table(&last.merged.profile);
    if !table.is_empty() {
        eprintln!("{table}");
    }

    // ----- fixed overhead: the step cost with nothing due ------------------
    // An epoch tick where no flows are scheduled still pays the full
    // per-step machinery — on the old plane that meant construct + spawn +
    // teardown; on the resident fleet it is a ring round-trip and an
    // in-place reset. This isolates exactly the overhead residency removes.
    let empty: Vec<mop_tun::FlowSpec> = Vec::new();
    let started = Instant::now();
    for _ in 0..steps {
        FleetEngine::new(config.clone(), network.clone()).run(empty.clone());
    }
    let cold_fixed_ms = started.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let mut resident = ResidentFleet::new(config.clone());
    resident.run_next(&network, empty.clone()); // Warmup.
    let started = Instant::now();
    for _ in 0..steps {
        resident.run_next(&network, empty.clone());
    }
    let warm_fixed_ms = started.elapsed().as_secs_f64() * 1e3 / steps as f64;
    let ratio = cold_fixed_ms / warm_fixed_ms;
    eprintln!(
        "step_latency: fixed per-step overhead (zero flows due): cold {cold_fixed_ms:.3} \
         ms/step, warm {warm_fixed_ms:.3} ms/step ({ratio:.1}x)",
    );
    assert!(
        ratio >= 5.0,
        "resident fixed step overhead must be >=5x below cold construction \
         (cold {cold_fixed_ms:.3} ms, warm {warm_fixed_ms:.3} ms, {ratio:.1}x)"
    );
}

criterion_group!(benches, bench_step_latency);
criterion_main!(benches);
