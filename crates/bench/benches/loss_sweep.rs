//! Loss sweep: relay goodput versus data-path loss rate, Reno versus CUBIC.
//!
//! One fixed video-heavy flow set rides an LTE profile whose data-fault
//! knobs sweep from clean to cell-edge (loss 0 → 3 %, with reordering and
//! duplication scaled along). Each run reports aggregate download goodput,
//! so the curve shows what the recovery machinery — fast retransmit, SACK
//! recovery, RTO backoff, cwnd-paced resends — costs as the path degrades.
//! The zero-loss point must match the fault-free engine exactly (recovery
//! state is never even created), which `tests/fleet_determinism.rs` pins;
//! this bench is only about the cost and goodput curves.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_dataset::{NetProfile, Scenario, TrafficMix};
use mop_simnet::{AccessProfile, SimDuration, SimNetwork, SimNetworkBuilder};
use mopeye_core::{CongestionAlgo, FleetConfig, FleetEngine};

const LOSS_RATES: [f64; 4] = [0.0, 0.005, 0.01, 0.03];

fn scenario() -> Scenario {
    Scenario::single(TrafficMix::VideoStreaming, NetProfile::Lte, 120, SimDuration::from_secs(4), 2017)
}

fn network(loss: f64) -> SimNetworkBuilder {
    let access = AccessProfile::lte().with_data_faults(loss, loss / 3.0, loss / 15.0);
    SimNetwork::builder().seed(2017).flow_keyed().with_table2_destinations().access(access)
}

fn algo_label(algo: CongestionAlgo) -> &'static str {
    match algo {
        CongestionAlgo::Reno => "reno",
        CongestionAlgo::Cubic => "cubic",
    }
}

fn bench_loss_sweep(c: &mut Criterion) {
    let scenario = scenario();
    let flows = scenario.generate();

    let mut group = c.benchmark_group("loss_sweep");
    group.sample_size(10);
    for algo in [CongestionAlgo::Reno, CongestionAlgo::Cubic] {
        for loss in LOSS_RATES {
            let label = format!("video_120users_{}_loss{:.3}", algo_label(algo), loss);
            group.bench_function(&label, |b| {
                b.iter(|| {
                    FleetEngine::new(
                        FleetConfig::new(1).with_congestion(algo),
                        network(loss),
                    )
                    .run(flows.clone())
                })
            });
        }
    }
    group.finish();

    // A one-line stderr summary per (cc, loss) point for eyeballing the
    // goodput curve without parsing criterion output (BENCH_pr7.json
    // records these).
    for algo in [CongestionAlgo::Reno, CongestionAlgo::Cubic] {
        for loss in LOSS_RATES {
            let fleet = FleetEngine::new(FleetConfig::new(1).with_congestion(algo), network(loss));
            let started = std::time::Instant::now();
            let report = fleet.run(flows.clone());
            let wall = started.elapsed();
            let relay = &report.merged.relay;
            eprintln!(
                "loss_sweep: {:>5} loss {loss:.3}: {:>7.2} Mbit/s goodput, {:>4} retransmits \
                 ({:>3} rto), {:>5.0} ms wall, digest {:016x}",
                algo_label(algo),
                report.relay_throughput_mbps().unwrap_or(0.0),
                relay.retransmits,
                relay.rto_fires,
                wall.as_secs_f64() * 1e3,
                report.digest(),
            );
        }
    }
}

criterion_group!(benches, bench_loss_sweep);
criterion_main!(benches);
