//! Longitudinal-run costs: the diurnal fleet with epoch windows on, the
//! checkpoint save/restore path, and the memory claim behind both.
//!
//! The windowed epoch sketches must make per-run analytics memory
//! O(window × cells) — *independent of run length*: a day of traffic keeps
//! at most `epoch_window` live epochs, everything older folded into one
//! tail store. The stderr summary prints the live-epoch and cell counts at
//! several window lengths over the same 24-epoch day, plus the checkpoint's
//! JSON size and save/parse/resume wall times (`BENCH_pr8.json` records
//! these).

use criterion::{criterion_group, criterion_main, Criterion};
use mop_dataset::{DiurnalScenario, Scenario};
use mopeye_core::{epoch_boundary, FleetCheckpoint, FleetConfig, FleetEngine};

const USERS: usize = 150;
const SEED: u64 = 2017;

fn fleet(shards: usize, window: usize) -> FleetEngine {
    let mut config = FleetConfig::new(shards)
        .with_seed(SEED)
        .with_epochs(DiurnalScenario::virtual_hour(), window);
    config.engine = config.engine.with_retain_samples(false);
    FleetEngine::new(config, Scenario::diurnal(USERS, SEED).network())
}

fn bench_diurnal(c: &mut Criterion) {
    let day = Scenario::diurnal(USERS, SEED);
    let flows = day.generate();

    let mut group = c.benchmark_group("diurnal");
    group.sample_size(10);
    group.bench_function("day_150users_4shards_windowed", |b| {
        b.iter(|| fleet(4, 32).run(flows.clone()))
    });
    group.bench_function("checkpoint_roundtrip_150users", |b| {
        let cut = epoch_boundary(DiurnalScenario::virtual_hour().as_nanos(), 12);
        b.iter(|| {
            let checkpoint = FleetCheckpoint::capture(&fleet(4, 32), flows.clone(), cut);
            let text = checkpoint.to_json_string();
            FleetCheckpoint::from_json_str(&text).expect("parse").resume(&fleet(4, 32))
        })
    });
    group.finish();

    // --- the memory claim: live state is capped by the window, not the day
    for window in [4usize, 8, 32] {
        let report = fleet(4, window).run(flows.clone());
        let windows = report.merged.windows.expect("windowed run");
        eprintln!(
            "diurnal: window {window:>2}: {:>2} live epochs over a 24-epoch day, \
             {:>3} live cells + {:>3} folded-tail cells, {} samples",
            windows.live_epochs().len(),
            windows
                .live_epochs()
                .iter()
                .map(|&e| windows.epoch_store(e).map_or(0, |s| s.cell_count()))
                .sum::<usize>(),
            windows.folded().cell_count(),
            windows.sample_count(),
        );
        assert!(
            windows.live_epochs().len() <= window,
            "live epochs exceed the window"
        );
    }

    // --- checkpoint size and save/restore wall time
    let cut = epoch_boundary(DiurnalScenario::virtual_hour().as_nanos(), 12);
    let saved_at = std::time::Instant::now();
    let checkpoint = FleetCheckpoint::capture(&fleet(4, 32), flows.clone(), cut);
    let capture_wall = saved_at.elapsed();
    let serialised_at = std::time::Instant::now();
    let text = checkpoint.to_json_string();
    let serialise_wall = serialised_at.elapsed();
    let restore_at = std::time::Instant::now();
    let restored = FleetCheckpoint::from_json_str(&text).expect("checkpoint parses");
    let parse_wall = restore_at.elapsed();
    let resume_at = std::time::Instant::now();
    let resumed = restored.resume(&fleet(4, 32));
    let resume_wall = resume_at.elapsed();
    let uninterrupted = fleet(4, 32).run(flows.clone());
    eprintln!(
        "diurnal: checkpoint at epoch 12: {} bytes JSON ({} pending flows), \
         capture {:.0} ms, serialise {:.1} ms, parse {:.1} ms, resume {:.0} ms; \
         resumed digest {:016x} {} uninterrupted {:016x}",
        text.len(),
        checkpoint.pending.len(),
        capture_wall.as_secs_f64() * 1e3,
        serialise_wall.as_secs_f64() * 1e3,
        parse_wall.as_secs_f64() * 1e3,
        resume_wall.as_secs_f64() * 1e3,
        resumed.digest(),
        if resumed.digest() == uninterrupted.digest() { "==" } else { "!=" },
        uninterrupted.digest(),
    );
    assert_eq!(resumed.digest(), uninterrupted.digest(), "checkpoint cut moved the digest");
}

criterion_group!(benches, bench_diurnal);
criterion_main!(benches);
