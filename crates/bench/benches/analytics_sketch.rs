//! Sketch-path vs vector-path crowd-report cost.
//!
//! The streaming aggregation's claim is that producing the crowd report from
//! sketches costs O(cells) while the vector path costs O(samples) (filter,
//! copy, sort per statistic). Two workload shapes:
//!
//! * `fleet_report/*` — a deployment-shaped stream: a bounded key population
//!   (40 apps × networks × ISPs ≈ 120 cells) observed at 50k and 500k
//!   samples. The sketch-path report cost is flat across the 10× sample
//!   growth; the vector path scales linearly. This is the shape the fleet
//!   `report` binary sees (a rush-hour run folds ~16k samples into 18
//!   cells).
//! * `crowd_report/*` — the adversarial shape: the §4.2 synthetic dataset,
//!   whose key cardinality (long-tail apps × per-country ISPs) grows with
//!   the dataset itself, so the sketch path's advantage narrows to the
//!   constant-factor win of pre-grouped cells.
//!
//! `fold_records` prices the sink-side fold itself (amortised per record).
//! `BENCH_pr4.json` records the headlines.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_bench::crowd_dataset;
use mop_measure::{AggregateStore, Cdf, MeasurementKind, NetKind, RttRecord};

/// A deployment-shaped record stream: fixed key population, arbitrary
/// sample count (the `analytics_memory` test uses the same shape).
fn fleet_record(i: u64) -> RttRecord {
    let app = format!("com.fleet.app{:02}", i % 40);
    let network = if i % 3 == 0 { NetKind::Wifi } else { NetKind::Lte };
    let isp = ["HomeWiFi", "SimTel LTE", "Jio 4G"][(i % 3) as usize];
    let rtt = 20.0 + (i % 499) as f64 * 0.7;
    RttRecord::tcp(rtt, (i % 64) as u32, &app, network).with_isp(isp)
}

fn headline_from_sketches(agg: &AggregateStore) -> f64 {
    let mut acc = 0.0f64;
    for kind in [MeasurementKind::Tcp, MeasurementKind::Dns] {
        for net in NetKind::ALL {
            let sketch = agg.sketch_where(|k| k.kind == kind && k.network == net);
            acc += sketch.median().unwrap_or(0.0) + sketch.quantile(0.95).unwrap_or(0.0);
        }
    }
    acc
}

fn headline_from_vectors(records: &[RttRecord]) -> f64 {
    let mut acc = 0.0f64;
    for kind in [MeasurementKind::Tcp, MeasurementKind::Dns] {
        for net in NetKind::ALL {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.kind == kind && r.network == net)
                .map(|r| r.rtt_ms)
                .collect();
            let cdf = Cdf::from_values(&values);
            acc += cdf.median().unwrap_or(0.0) + cdf.quantile(0.95).unwrap_or(0.0);
        }
    }
    acc
}

fn bench_fleet_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_report");
    for samples in [50_000u64, 500_000] {
        let records: Vec<RttRecord> = (0..samples).map(fleet_record).collect();
        let mut agg = AggregateStore::new();
        for r in &records {
            agg.observe(r);
        }
        eprintln!(
            "analytics_sketch: fleet shape: {} samples in {} cells",
            samples,
            agg.cell_count()
        );
        let tag = format!("{}k_samples", samples / 1000);
        group.bench_function(&format!("report_from_sketches_{tag}"), |b| {
            b.iter(|| headline_from_sketches(&agg))
        });
        group.bench_function(&format!("report_from_vectors_{tag}"), |b| {
            b.iter(|| headline_from_vectors(&records))
        });
    }
    group.finish();
}

fn bench_crowd_shape(c: &mut Criterion) {
    let dataset = crowd_dataset(0.01);
    eprintln!(
        "analytics_sketch: crowd shape: {} records, {} sketch cells",
        dataset.store.len(),
        dataset.aggregates.cell_count()
    );
    let mut group = c.benchmark_group("crowd_report");
    group.bench_function("report_from_sketches", |b| {
        b.iter(|| headline_from_sketches(&dataset.aggregates))
    });
    group.bench_function("report_from_vectors", |b| {
        b.iter(|| headline_from_vectors(dataset.store.records()))
    });
    group.bench_function("fold_records", |b| {
        b.iter(|| {
            let mut agg = AggregateStore::new();
            for record in dataset.store.records() {
                agg.observe(record);
            }
            agg.sample_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_shape, bench_crowd_shape);
criterion_main!(benches);
