//! Fleet bench: the sharded relay engine under the rush-hour scenario.
//!
//! Two parts:
//!
//! * a criterion-timed microbench of a small rush-hour fleet at 1 vs 8
//!   shards (wall-clock of the whole sharded run, dispatcher and merge
//!   included), and
//! * the headline sweep printed to stderr: a 100k-connection rush hour under
//!   the *saturating* worker model at 1/2/4/8 shards, reporting the modelled
//!   aggregate relay throughput (response bytes delivered / busy interval),
//!   the per-run digest and the wall time. `BENCH_pr3.json` records these
//!   numbers. Under the saturating model the digest is stable for a given
//!   shard count (same seed → same run) but legitimately *differs across*
//!   shard counts: queueing behind a shard's worker depends on which flows
//!   share it. The shard-count-invariance guarantee belongs to the default
//!   unbounded model and is pinned by `tests/fleet_determinism.rs`.
//!   `FLEET_BENCH_USERS` scales the sweep (default 13_000 users ≈ 100k
//!   connections; set it lower for a quick look).

use criterion::{criterion_group, criterion_main, Criterion};
use mop_dataset::Scenario;
use mopeye_core::{FleetConfig, FleetEngine};

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_relay");
    group.sample_size(10);
    let scenario = Scenario::rush_hour(500, 2017);
    let flows = scenario.generate();
    for shards in [1usize, 8] {
        group.bench_function(&format!("rush_hour_500users_{shards}shards"), |b| {
            b.iter(|| {
                FleetEngine::new(FleetConfig::new(shards), scenario.network())
                    .run(flows.clone())
            })
        });
    }
    group.finish();

    // ----- headline sweep: 100k+ connections, saturating worker -----------
    let users: usize = std::env::var("FLEET_BENCH_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(13_000);
    // FLEET_BENCH_BATCH pins the stage batch size (default: the engine's
    // default). Batch 1 reproduces the pre-vectoring datapath — the
    // before/after rows of BENCH_pr6.json come from this knob.
    let batch: Option<usize> = std::env::var("FLEET_BENCH_BATCH").ok().and_then(|v| v.parse().ok());
    let scenario = Scenario::rush_hour(users, 2017);
    let flows = scenario.generate();
    eprintln!(
        "fleet: rush-hour sweep, {} users, {} connections, batch {}",
        users,
        flows.len(),
        batch.map_or("default".into(), |b| b.to_string())
    );
    let mut results = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut config = FleetConfig::new(shards).saturating();
        if let Some(batch) = batch {
            config = config.with_batch_size(batch);
        }
        let fleet = FleetEngine::new(config, scenario.network());
        let started = std::time::Instant::now();
        let report = fleet.run(flows.clone());
        let wall = started.elapsed().as_secs_f64();
        let throughput = report.relay_throughput_mbps().unwrap_or(0.0);
        eprintln!(
            "fleet: {shards} shards: {throughput:.1} Mbps relay throughput, \
             finished at {}, digest {:016x}, pool reuse {:.2}%, {wall:.1}s wall",
            report.merged.finished_at,
            report.digest(),
            100.0 * report.merged.buffer_pool.reuse_rate(),
        );
        // With `--features profiling`, break the wall time down by phase.
        let table = mop_simnet::profiling::render_table(&report.merged.profile);
        if !table.is_empty() {
            eprintln!("{table}");
        }
        results.push((shards, throughput));
    }
    if let (Some((_, t1)), Some((_, t8))) = (results.first(), results.last()) {
        eprintln!("fleet: 8-shard / 1-shard throughput ratio: {:.2}x", t8 / t1);
    }
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
