//! mop_json serialise/parse costs on the two document shapes the stack
//! actually ships: a number-heavy checkpoint-like document (sample arrays,
//! sketch cells) and a string-heavy report-like document (app/domain/ISP
//! labels). `to_string` runs the escape-free fast path (bulk-copies
//! unescaped runs after a byte scan) with capacity preallocated from
//! `estimate_compact`; `from_str` is the PR 8 single-pass scanner.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_json::{json, Value};

/// ~1 MB of float/int records: the checkpoint encoding's shape.
fn number_heavy() -> Value {
    let rows: Vec<Value> = (0..8_000)
        .map(|i| {
            json!({
                "at_ns": (i as i64) * 12_345,
                "rtt_ms": (i as f64) * 0.125 + 0.0625,
                "seq": i as i64,
                "kind": "tcp-connect",
            })
        })
        .collect();
    json!({ "samples": Value::Array(rows) })
}

/// ~1 MB of label strings: the crowd-report/aggregate shape. All
/// escape-free, so serialisation should be dominated by bulk copies.
fn string_heavy() -> Value {
    let rows: Vec<Value> = (0..6_000)
        .map(|i| {
            json!({
                "app": format!("com.example.app{:04}", i % 977),
                "domain": format!("cdn{:03}.host{:03}.example.net", i % 313, i % 127),
                "isp": "Example Telecom International",
                "network": if i % 2 == 0 { "wifi" } else { "lte" },
                "verdict": "network-slow (p50 over the all-apps baseline)",
            })
        })
        .collect();
    json!({ "rows": Value::Array(rows) })
}

fn bench_json(c: &mut Criterion) {
    let mut group = c.benchmark_group("json_codec");
    group.sample_size(10);
    for (name, doc) in [("number_heavy", number_heavy()), ("string_heavy", string_heavy())] {
        let text = mop_json::to_string(&doc);
        eprintln!("json_codec: {name} document is {} bytes compact", text.len());
        group.bench_function(&format!("to_string_{name}"), |b| {
            b.iter(|| mop_json::to_string(&doc))
        });
        group.bench_function(&format!("from_str_{name}"), |b| {
            b.iter(|| mop_json::from_str(&text).expect("round-trip"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_json);
criterion_main!(benches);
