//! Batch-size sweep: per-packet cost of the vectored datapath as the stage
//! burst length grows.
//!
//! One fixed rush-hour flow set (fixed offered load) is relayed through a
//! single-shard fleet at batch sizes 1 → 256; the stderr summary divides
//! each run's wall time by its TUN packet count, so the per-packet time is
//! directly comparable across batch sizes. The acceptance shape is
//! *near-flat*: batching amortises event-loop dispatch and slab handling, so
//! per-packet cost must not grow with the batch size (and should dip from 1
//! to the default 32). Determinism across these sizes is pinned separately
//! by `tests/fleet_determinism.rs`; this bench is only about the cost curve.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_dataset::Scenario;
use mopeye_core::{FleetConfig, FleetEngine};

fn bench_batch_sweep(c: &mut Criterion) {
    let scenario = Scenario::rush_hour(200, 2017);
    let flows = scenario.generate();

    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(10);
    for batch in [1usize, 8, 32, 64, 128, 256] {
        group.bench_function(&format!("rush_hour_200users_batch{batch}"), |b| {
            b.iter(|| {
                FleetEngine::new(
                    FleetConfig::new(1).with_batch_size(batch),
                    scenario.network(),
                )
                .run(flows.clone())
            })
        });
    }
    group.finish();

    // A one-line stderr summary per batch size for eyeballing flatness
    // without parsing criterion output (BENCH_pr6.json records these).
    for batch in [1usize, 8, 32, 64, 128, 256] {
        let fleet =
            FleetEngine::new(FleetConfig::new(1).with_batch_size(batch), scenario.network());
        let started = std::time::Instant::now();
        let report = fleet.run(flows.clone());
        let wall = started.elapsed();
        eprintln!(
            "batch_sweep: batch {batch:>3}: {:>6.1} ns/packet, digest {:016x}",
            wall.as_nanos() as f64 / report.merged.tun.packets_from_apps.max(1) as f64,
            report.digest(),
        );
    }
}

criterion_group!(benches, bench_batch_sweep);
criterion_main!(benches);
