//! Microbenchmark of the packet parse/serialise hot path the relay runs for
//! every tunnel packet.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mop_packet::{Endpoint, Packet, PacketBuilder, PacketView};

fn bench_packet_codec(c: &mut Criterion) {
    let builder =
        PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443));
    let syn = builder.tcp_syn(1000).to_bytes();
    let data = builder.tcp_data(1001, 500, vec![0xab; 1400]).to_bytes();
    let mut group = c.benchmark_group("packet_codec");
    group.bench_function("parse_syn", |b| b.iter(|| Packet::parse(black_box(&syn)).unwrap()));
    group.bench_function("parse_data_1400B", |b| b.iter(|| Packet::parse(black_box(&data)).unwrap()));
    // The zero-copy path the relay's MainWorker actually runs per packet.
    group.bench_function("view_parse_syn", |b| {
        b.iter(|| PacketView::parse(black_box(&syn)).unwrap().four_tuple())
    });
    group.bench_function("view_parse_data_1400B", |b| {
        b.iter(|| {
            let view = PacketView::parse(black_box(&data)).unwrap();
            (view.four_tuple(), view.tcp().unwrap().payload().len())
        })
    });
    group.bench_function("build_and_checksum_data_1400B", |b| {
        b.iter(|| builder.tcp_data(black_box(1001), 500, vec![0xab; 1400]).to_bytes())
    });
    // Encoding into a pooled, reused buffer — the TunWriter-side hot path.
    group.bench_function("encode_into_reused_data_1400B", |b| {
        let packet = builder.tcp_data(1001, 500, vec![0xab; 1400]);
        let mut out = Vec::with_capacity(2048);
        b.iter(|| {
            out.clear();
            packet.encode_into(black_box(&mut out));
            out.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_packet_codec);
criterion_main!(benches);
