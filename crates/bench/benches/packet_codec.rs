//! Microbenchmark of the packet parse/serialise hot path the relay runs for
//! every tunnel packet.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mop_packet::{Endpoint, Packet, PacketBuilder};

fn bench_packet_codec(c: &mut Criterion) {
    let builder =
        PacketBuilder::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443));
    let syn = builder.tcp_syn(1000).to_bytes();
    let data = builder.tcp_data(1001, 500, vec![0xab; 1400]).to_bytes();
    let mut group = c.benchmark_group("packet_codec");
    group.bench_function("parse_syn", |b| b.iter(|| Packet::parse(black_box(&syn)).unwrap()));
    group.bench_function("parse_data_1400B", |b| b.iter(|| Packet::parse(black_box(&data)).unwrap()));
    group.bench_function("build_and_checksum_data_1400B", |b| {
        b.iter(|| builder.tcp_data(black_box(1001), 500, vec![0xab; 1400]).to_bytes())
    });
    group.finish();
}

criterion_group!(benches, bench_packet_codec);
criterion_main!(benches);
