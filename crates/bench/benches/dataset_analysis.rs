//! Crowd-dataset bench: generation plus the §4.2 analyses (Figures 6-11,
//! Tables 5-6, the case studies).

use criterion::{criterion_group, criterion_main, Criterion};
use mop_analytics::{CaseJio, CaseWhatsapp, Fig10Dns, Fig9AppRtt, Table5Apps, Table6IspDns};
use mop_dataset::{DatasetSpec, SyntheticDataset};

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowd_dataset");
    group.sample_size(10);
    group.bench_function("generate_scale_0.002", |b| {
        b.iter(|| SyntheticDataset::generate(DatasetSpec { seed: 1, scale: 0.002 }))
    });
    let dataset = SyntheticDataset::generate(DatasetSpec { seed: 1, scale: 0.004 });
    group.bench_function("fig9_fig10_analysis", |b| {
        b.iter(|| {
            let fig9 = Fig9AppRtt::compute(&dataset);
            let fig10 = Fig10Dns::compute(&dataset);
            (fig9.all.median(), fig10.all.median())
        })
    });
    group.bench_function("tables_and_cases", |b| {
        b.iter(|| {
            let t5 = Table5Apps::compute(&dataset);
            let t6 = Table6IspDns::compute(&dataset);
            let c1 = CaseWhatsapp::compute(&dataset);
            let c2 = CaseJio::compute(&dataset);
            (t5.rows.len(), t6.rows.len(), c1.domains_observed, c2.domains_compared)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);
