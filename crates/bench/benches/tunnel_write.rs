//! Table 1 bench: tunnel-write delay under the four writing schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_analytics::Table1TunnelWrite;

fn bench_tunnel_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_tunnel_write");
    group.sample_size(10);
    group.bench_function("four_schemes_2000_packets", |b| {
        b.iter(|| Table1TunnelWrite::run(3, 2_000))
    });
    group.finish();
    let t1 = Table1TunnelWrite::run(3, 5_000);
    let [d, q, o, n] = t1.large_fractions();
    eprintln!(
        "table1 >1ms fractions: directWrite {:.2}%, queueWrite {:.2}%, oldPut {:.2}%, newPut {:.3}%",
        d * 100.0, q * 100.0, o * 100.0, n * 100.0
    );
}

criterion_group!(benches, bench_tunnel_write);
criterion_main!(benches);
