//! Microbenchmark of the user-space TCP state machine: full connection
//! lifecycle and bulk data segmentation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mop_packet::{Endpoint, FourTuple, PacketBuilder};
use mop_tcpstack::TcpStateMachine;

fn flow() -> FourTuple {
    FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
}

fn bench_tcpstack(c: &mut Criterion) {
    let app = PacketBuilder::new(flow().src, flow().dst);
    let syn = app.tcp_syn(1000).tcp().unwrap().clone();
    let data = app.tcp_data(1001, 9001, vec![1u8; 512]).tcp().unwrap().clone();
    let mut group = c.benchmark_group("tcpstack");
    group.bench_function("handshake_and_request", |b| {
        b.iter(|| {
            let mut m = TcpStateMachine::new(flow(), 9000);
            m.on_tunnel_segment(black_box(&syn));
            m.on_external_connected();
            m.on_tunnel_segment(black_box(&data));
            m.on_external_write_complete();
        })
    });
    group.bench_function("segment_64KB_response", |b| {
        let mut m = TcpStateMachine::new(flow(), 9000);
        m.on_tunnel_segment(&syn);
        m.on_external_connected();
        m.on_tunnel_segment(&data);
        let body = vec![0x5a; 64 * 1024];
        b.iter(|| m.on_external_data(black_box(&body)))
    });
    group.finish();
}

criterion_group!(benches, bench_tcpstack);
criterion_main!(benches);
