//! Table 2 bench: RTT accuracy of the relay measurement vs MobiPerf.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_analytics::Table2Accuracy;

fn bench_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_accuracy");
    group.sample_size(10);
    group.bench_function("three_destinations_x6", |b| b.iter(|| Table2Accuracy::run(5, 6)));
    group.finish();
    let t2 = Table2Accuracy::run(5, 10);
    for row in &t2.rows {
        eprintln!(
            "table2 {}: tcpdump {:.1} ms, MopEye {:.1} ms (δ {:.2}), MobiPerf {:.1} ms (δ {:.1})",
            row.name, row.tcpdump_for_mopeye_ms, row.mopeye_ms, row.mopeye_delta_ms,
            row.mobiperf_ms, row.mobiperf_delta_ms
        );
    }
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
