//! Figure 5 bench: packet-to-app mapping overhead, eager vs lazy.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_analytics::Fig5Mapping;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_mapping_overhead");
    group.sample_size(10);
    group.bench_function("web_browsing_scenario", |b| b.iter(|| Fig5Mapping::run(1)));
    group.finish();
    let fig5 = Fig5Mapping::run(1);
    eprintln!(
        "fig5: mitigation rate {:.1}% ({} of {} threads parsed); eager median {:.1} ms",
        100.0 * fig5.mitigation_rate,
        fig5.lazy_parses,
        fig5.total_requests,
        fig5.before_cdf().median().unwrap_or(f64::NAN)
    );
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
