//! Ablation bench for §3.1: packet-retrieval delay and polling CPU of the
//! four TUN read strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_simnet::{CostModel, SimRng, SimTime};
use mop_tun::{ReadStrategy, ReaderSim};

fn run_strategy(strategy: ReadStrategy, packets: u64) -> (f64, f64) {
    let cost = CostModel::android_phone();
    let mut rng = SimRng::seed_from_u64(9);
    let mut reader = ReaderSim::new(strategy);
    for i in 0..packets {
        reader.retrieve(SimTime::from_millis(17 * i + 3), &cost, &mut rng);
    }
    (reader.mean_delay().as_millis_f64(), reader.total_polling_cpu().as_millis_f64())
}

fn bench_tun_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("tun_read");
    group.sample_size(20);
    for (name, strategy) in [
        ("mopeye_blocking", ReadStrategy::mopeye()),
        ("haystack_adaptive", ReadStrategy::haystack()),
        ("privacyguard_20ms", ReadStrategy::privacyguard()),
        ("toyvpn_100ms", ReadStrategy::toyvpn()),
    ] {
        group.bench_function(name, |b| b.iter(|| run_strategy(strategy, 500)));
    }
    group.finish();
    // Print the ablation numbers once so the bench log carries them.
    for (name, strategy) in [
        ("mopeye_blocking", ReadStrategy::mopeye()),
        ("haystack_adaptive", ReadStrategy::haystack()),
        ("privacyguard_20ms", ReadStrategy::privacyguard()),
        ("toyvpn_100ms", ReadStrategy::toyvpn()),
    ] {
        let (delay, cpu) = run_strategy(strategy, 2_000);
        eprintln!("tun_read ablation {name}: mean retrieval delay {delay:.3} ms, polling CPU {cpu:.1} ms");
    }
}

criterion_group!(benches, bench_tun_read);
criterion_main!(benches);
