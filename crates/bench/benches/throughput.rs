//! Table 3 bench: throughput overhead of the relay configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use mop_analytics::Table3Throughput;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_throughput");
    group.sample_size(10);
    group.bench_function("speedtest_6MiB", |b| {
        b.iter(|| Table3Throughput::run(7, 6 * 1024 * 1024))
    });
    group.finish();
    let t3 = Table3Throughput::run(7, 24 * 1024 * 1024);
    eprintln!(
        "table3: baseline {:.2}/{:.2} Mbps, MopEye {:.2}/{:.2}, Haystack {:.2}/{:.2} (down/up)",
        t3.baseline.download_mbps, t3.baseline.upload_mbps,
        t3.mopeye.download_mbps, t3.mopeye.upload_mbps,
        t3.haystack.download_mbps, t3.haystack.upload_mbps
    );
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
