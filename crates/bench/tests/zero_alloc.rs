//! Regression test: the steady-state relay loop is allocation-free.
//!
//! The paper's Table 3 workload is the relay's steady state: the app streams
//! ACKs into the tunnel while the relay segments server data back out. Per
//! packet that means (a) reading the raw bytes into a pooled buffer, (b)
//! parsing them with the zero-copy views, (c) running the TCP state machine's
//! relay decision (pure ACKs are discarded, §2.3), and (d) encoding the next
//! data segment towards the app into a reused buffer. After warm-up, none of
//! those steps may touch the allocator — that is the contract the pooled
//! zero-copy datapath exists to provide, and this test pins it.
//!
//! This file intentionally contains a single test: the counting allocator is
//! process-global, so a concurrently running test would pollute the window.

use mop_bench::alloc_counter::CountingAllocator;
use mop_packet::{Endpoint, FourTuple, Packet, PacketBuilder, PacketView};
use mop_simnet::BufferPool;
use mop_tcpstack::{SegmentVerdict, TcpStateMachine};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn flow() -> FourTuple {
    FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
}

/// One steady-state round: TUN read into a pooled buffer, zero-copy parse,
/// relay decision, and encoding the next outbound data segment into a reused
/// buffer. Returns the verdict so the test can assert the path taken.
fn relay_round(
    pool: &mut BufferPool,
    machine: &mut TcpStateMachine,
    ack_bytes: &[u8],
    data_packet: &Packet,
    out: &mut Vec<u8>,
) -> SegmentVerdict {
    let mut buf = pool.get();
    buf.extend_from_slice(ack_bytes);
    let view = PacketView::parse(&buf).expect("app ACK parses");
    let segment = view.tcp().expect("TCP packet");
    let (packets, actions, verdict) = machine.on_tunnel_segment_view(segment);
    assert!(packets.is_empty() && actions.is_empty(), "pure ACKs are discarded");
    out.clear();
    data_packet.encode_into(out);
    pool.put(buf);
    verdict
}

#[test]
fn steady_state_relay_loop_performs_zero_allocations_per_packet() {
    let app = PacketBuilder::new(flow().src, flow().dst);
    let relay = PacketBuilder::new(flow().dst, flow().src);

    // Establish the connection the way the engine does: app SYN, external
    // connect completes, app ACKs the SYN/ACK.
    let mut machine = TcpStateMachine::new(flow(), 9000);
    let syn = app.tcp_syn(1000);
    machine.on_tunnel_segment(syn.tcp().unwrap());
    machine.on_external_connected();

    // The steady-state inputs: a pure ACK from the app (what a download
    // stream sends through the tunnel) and the relay's next MSS-sized data
    // segment towards the app.
    let ack_bytes = app.tcp_ack(1001, 9001).to_bytes();
    let data_packet = relay.tcp_data(9001, 1001, vec![0x5a; 1400]);

    let mut pool = BufferPool::for_packets();
    let mut out = Vec::with_capacity(2048);

    // Warm up: first rounds may allocate (pool cold, buffers growing, state
    // transition to Established).
    for _ in 0..16 {
        relay_round(&mut pool, &mut machine, &ack_bytes, &data_packet, &mut out);
    }

    // Measure: thousands of packets, zero allocations. The counting
    // allocator is process-global, so a one-shot lazy init on the harness's
    // main thread can race into a window; such noise never repeats, so a
    // dirty window gets retried — a real per-packet allocation fails every
    // window.
    const PACKETS: u64 = 10_000;
    const WINDOWS: usize = 3;
    let (mut allocs, mut deallocs) = (u64::MAX, u64::MAX);
    for _ in 0..WINDOWS {
        let allocs_before = ALLOC.allocations();
        let deallocs_before = ALLOC.deallocations();
        for _ in 0..PACKETS {
            let verdict =
                relay_round(&mut pool, &mut machine, &ack_bytes, &data_packet, &mut out);
            assert!(matches!(verdict, SegmentVerdict::PureAckDiscarded));
        }
        allocs = ALLOC.allocations() - allocs_before;
        deallocs = ALLOC.deallocations() - deallocs_before;
        if allocs == 0 && deallocs == 0 {
            break;
        }
    }
    assert_eq!(
        allocs, 0,
        "steady-state relay loop allocated {allocs} times over {PACKETS} packets"
    );
    assert_eq!(
        deallocs, 0,
        "steady-state relay loop freed {deallocs} times over {PACKETS} packets"
    );
    assert!(std::hint::black_box(&out).len() >= 1400);
}
