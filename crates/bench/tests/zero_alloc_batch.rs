//! Regression test: the *batched* relay datapath is allocation-free.
//!
//! `tests/zero_alloc.rs` pins the item-wise steady state; this file pins the
//! vectored one. Per burst that means (a) checking a `SlabBatch` out of the
//! `BatchPool`, (b) sealing a batch of app ACKs into the slab's contiguous
//! data region with inline per-packet slots, (c) zero-copy parsing each
//! packet straight out of the slab and running the TCP relay decision, and
//! (d) returning the slab to the pool. After warm-up (slab data region and
//! slot vector grown to the burst's working set), none of those steps may
//! touch the allocator — batching must amortise dispatch, not hide a per
//! packet allocation.
//!
//! This file intentionally contains a single test: the counting allocator is
//! process-global, so a concurrently running test would pollute the window.

use mop_bench::alloc_counter::CountingAllocator;
use mop_packet::{Endpoint, FourTuple, PacketBuilder, PacketView};
use mop_simnet::{BatchPool, SimTime};
use mop_tcpstack::{SegmentVerdict, TcpStateMachine};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn flow() -> FourTuple {
    FourTuple::new(Endpoint::v4(10, 0, 0, 2, 40000), Endpoint::v4(31, 13, 79, 251, 443))
}

const BURST: usize = 32;

/// One steady-state burst: seal `BURST` app ACKs into a pooled slab, parse
/// and relay-decide each packet out of the slab, recycle the slab.
fn relay_burst(pool: &mut BatchPool, machine: &mut TcpStateMachine, ack_bytes: &[u8]) {
    let mut slab = pool.get();
    for i in 0..BURST {
        slab.push_bytes(ack_bytes, SimTime::from_nanos(i as u64));
    }
    for (_due, bytes) in slab.iter() {
        let view = PacketView::parse(bytes).expect("app ACK parses");
        let segment = view.tcp().expect("TCP packet");
        let (packets, actions, verdict) = machine.on_tunnel_segment_view(segment);
        assert!(packets.is_empty() && actions.is_empty(), "pure ACKs are discarded");
        assert!(matches!(verdict, SegmentVerdict::PureAckDiscarded));
    }
    pool.put(slab);
}

#[test]
fn batched_relay_loop_performs_zero_allocations_per_burst() {
    let app = PacketBuilder::new(flow().src, flow().dst);

    // Establish the connection the way the engine does: app SYN, external
    // connect completes, then the app streams pure ACKs.
    let mut machine = TcpStateMachine::new(flow(), 9000);
    let syn = app.tcp_syn(1000);
    machine.on_tunnel_segment(syn.tcp().unwrap());
    machine.on_external_connected();
    let ack_bytes = app.tcp_ack(1001, 9001).to_bytes();

    let mut pool = BatchPool::for_packets(BURST);

    // Warm up: first bursts may allocate (pool cold, slab data region and
    // slot vector growing to the burst's working set).
    for _ in 0..16 {
        relay_burst(&mut pool, &mut machine, &ack_bytes);
    }

    // Measure: hundreds of bursts — thousands of packets — zero allocations.
    // The counting allocator is process-global, so a one-shot lazy init on
    // the harness's main thread can race into a window; such noise never
    // repeats, so a dirty window gets retried — a real per-packet allocation
    // fails every window.
    const BURSTS: u64 = 500;
    const WINDOWS: usize = 3;
    let (mut allocs, mut deallocs) = (u64::MAX, u64::MAX);
    for _ in 0..WINDOWS {
        let allocs_before = ALLOC.allocations();
        let deallocs_before = ALLOC.deallocations();
        for _ in 0..BURSTS {
            relay_burst(&mut pool, &mut machine, &ack_bytes);
        }
        allocs = ALLOC.allocations() - allocs_before;
        deallocs = ALLOC.deallocations() - deallocs_before;
        if allocs == 0 && deallocs == 0 {
            break;
        }
    }
    assert_eq!(
        allocs,
        0,
        "batched relay loop allocated {allocs} times over {} packets",
        BURSTS * BURST as u64
    );
    assert_eq!(
        deallocs,
        0,
        "batched relay loop freed {deallocs} times over {} packets",
        BURSTS * BURST as u64
    );
}
