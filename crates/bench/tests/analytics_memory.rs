//! Regression test: peak analytics memory is independent of the sample
//! count.
//!
//! The streaming `AggregateStore` exists so that a shard sink's measurement
//! state is bounded by the number of aggregation *cells* (apps × kinds ×
//! networks × ISPs), never by the number of samples. This test pins that
//! with the counting allocator: folding 10× more samples through the same
//! key population must leave the retained footprint (and the process peak)
//! essentially unchanged, while the vector path grows linearly by
//! construction.
//!
//! This file intentionally contains a single test: the counting allocator is
//! process-global, so a concurrently running test would pollute the window.

use mop_bench::alloc_counter::CountingAllocator;
use mop_measure::{AggregateStore, MeasurementKind, NetKind, RttRecord};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// A deterministic record stream over a fixed key population (40 apps × 2
/// networks × 3 ISPs, 64 devices) — the shape a steady deployment has: new
/// samples keep arriving, new cells do not.
fn record(i: u64) -> RttRecord {
    let app = format!("com.fleet.app{:02}", i % 40);
    let network = if i % 3 == 0 { NetKind::Wifi } else { NetKind::Lte };
    let isp = ["HomeWiFi", "SimTel LTE", "Jio 4G"][(i % 3) as usize];
    let rtt = 20.0 + (i % 499) as f64 * 0.7;
    RttRecord::tcp(rtt, (i % 64) as u32, &app, network)
        .with_domain("api.fleet.example")
        .with_isp(isp)
        .with_country("USA")
}

fn fold(samples: u64) -> AggregateStore {
    let mut agg = AggregateStore::new();
    for i in 0..samples {
        agg.observe(&record(i));
    }
    agg
}

#[test]
fn aggregate_memory_is_independent_of_sample_count() {
    // Large enough that every cell's bucket population is saturated in the
    // warm-up pass (~500 samples per cell against a 499-value cycle), so the
    // 10× pass adds samples but no new state.
    const BASE: u64 = 60_000;

    // Warm-up pass: size the retained footprint of the cell population and
    // establish the process high-water mark.
    let live_before_small = ALLOC.live_bytes();
    let small = fold(BASE);
    let retained_small = ALLOC.live_bytes().saturating_sub(live_before_small);
    assert_eq!(small.sample_count(), BASE);
    let cells = small.cell_count();
    drop(small);
    let peak_after_small = ALLOC.peak_bytes();

    // 10× the samples through the same key population.
    let live_before_large = ALLOC.live_bytes();
    let large = fold(10 * BASE);
    let retained_large = ALLOC.live_bytes().saturating_sub(live_before_large);
    let peak_after_large = ALLOC.peak_bytes();
    assert_eq!(large.sample_count(), 10 * BASE);
    assert_eq!(large.cell_count(), cells, "same keys must mean same cells");

    // Retained footprint: same cells → same memory. Allow 25 % slack for
    // sketch buckets that only fill in at the larger sample count.
    assert!(
        retained_large as f64 <= retained_small as f64 * 1.25,
        "retained bytes grew with samples: {retained_small} -> {retained_large}"
    );

    // Peak: the 10× pass must not raise the process high-water mark by more
    // than the small pass's own footprint (i.e. no component scaled with the
    // sample count).
    assert!(
        peak_after_large.saturating_sub(peak_after_small) <= retained_small,
        "peak grew with samples: {peak_after_small} -> {peak_after_large} \
         (small footprint {retained_small})"
    );

    // Contrast: materialising the records themselves is O(samples) — at
    // least an order of magnitude above the aggregate for the 10× stream.
    let live_before_vec = ALLOC.live_bytes();
    let records: Vec<RttRecord> = (0..10 * BASE).map(record).collect();
    let retained_vec = ALLOC.live_bytes().saturating_sub(live_before_vec);
    assert!(
        retained_vec > retained_large * 10,
        "vector path should dwarf the sketch path: vec {retained_vec} vs agg {retained_large}"
    );
    drop(records);

    // Steady state: folding more samples into the warm store allocates
    // (almost) nothing — the scratch key reuses its capacity and every cell
    // exists. (The records are pre-built so only the fold is measured.)
    let mut warm = large;
    let extra: Vec<RttRecord> = (0..5_000).map(record).collect();
    let allocs_before = ALLOC.allocations();
    for r in &extra {
        warm.observe(r);
    }
    let allocs = ALLOC.allocations() - allocs_before;
    assert!(allocs <= 16, "steady-state observe allocated {allocs} times in 5000 folds");
    assert!(warm.median_where(|k| k.kind == MeasurementKind::Tcp).is_some());
}
