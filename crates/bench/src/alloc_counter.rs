//! A counting global allocator for allocation-regression tests.
//!
//! The zero-copy datapath's whole point is that the steady-state relay loop
//! touches the allocator zero times per packet; an assertion to that effect
//! needs a way to *count* allocations. [`CountingAllocator`] wraps the system
//! allocator and counts every `alloc`/`realloc` (and `dealloc`) that passes
//! through.
//!
//! Register it from a test binary (see `tests/zero_alloc.rs`):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//! ```
//!
//! The counters are process-global, so an allocation-free window is asserted
//! by diffing [`CountingAllocator::allocations`] around the measured loop —
//! which only works reliably when nothing else runs concurrently (keep one
//! test per binary).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that counts events before delegating to [`System`].
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    deallocations: AtomicU64,
    bytes_allocated: AtomicU64,
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
}

impl CountingAllocator {
    /// Creates the allocator with zeroed counters.
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    /// Number of allocation events so far (`alloc` + growing `realloc`).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Number of deallocation events so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator so far.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Bytes currently live (allocated minus deallocated) — the retained
    /// footprint a memory-independence test diffs around a workload.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`CountingAllocator::live_bytes`] — the peak
    /// memory the process has held. Monotone; compare marks taken before
    /// and after a workload to bound its peak working set.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    fn on_alloc(&self, size: u64) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(size, Ordering::Relaxed);
        let live = self.live_bytes.fetch_add(size, Ordering::Relaxed) + size;
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: u64) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        // Saturating: frees of memory allocated before the counters existed
        // (or racing with them) must not wrap the gauge.
        self.live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
                Some(live.saturating_sub(size))
            })
            .ok();
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates faithfully to the system allocator; the counters are
// plain relaxed atomics with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.on_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.on_dealloc(layout.size() as u64);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.on_alloc(new_size as u64);
        self.on_dealloc(layout.size() as u64);
        self.deallocations.fetch_sub(1, Ordering::Relaxed); // a realloc is one event, not two
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.on_alloc(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }
}
