//! Shared helpers for the Criterion benches and the `repro` binary.

pub mod alloc_counter;

use mop_analytics::diagnose::{diagnose_apps, rank_isps, DiagnosisConfig};
use mop_analytics::{
    CaseJio, CaseWhatsapp, CrowdSummary, Fig10Dns, Fig11IspDns, Fig5Mapping, Fig6Contribution,
    Fig7Countries, Fig8Locations, Fig9AppRtt, Table1TunnelWrite, Table2Accuracy,
    Table3Throughput, Table4Resources, Table5Apps, Table6IspDns,
};
use mop_analytics::render::{fmt_ms, render_cdf_series, render_sketch_series, render_table};
use mop_dataset::{DatasetSpec, Scenario, SyntheticDataset};
use mop_measure::{AggregateStore, MeasurementKind};
use mopeye_core::{CongestionAlgo, FleetConfig, FleetEngine, FleetReport};

/// Default seed used by the repro binary.
pub const REPRO_SEED: u64 = 20170712; // USENIX ATC '17 presentation date.

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment identifier ("table1", "fig9", "case1", ...).
    pub id: String,
    /// Human-readable text (tables and summaries).
    pub text: String,
    /// Machine-readable series/values as JSON.
    pub json: mop_json::Value,
}

/// Generates the shared crowd dataset used by the §4.2 experiments.
pub fn crowd_dataset(scale: f64) -> SyntheticDataset {
    SyntheticDataset::generate(DatasetSpec { seed: REPRO_SEED, scale })
}

/// Runs Figure 5 and renders it.
pub fn run_fig5(seed: u64) -> ExperimentOutput {
    let fig5 = Fig5Mapping::run(seed);
    let before = fig5.before_cdf();
    let after = fig5.after_cdf();
    let mut text = String::new();
    text.push_str(&render_table(
        "Figure 5: packet-to-app mapping overhead per SYN (CDF summary)",
        &["variant", "p25 (ms)", "median (ms)", "p75 (ms)", ">5ms", ">15ms"],
        &[
            vec![
                "before (eager)".into(),
                fmt_ms(before.quantile(0.25).unwrap_or(f64::NAN)),
                fmt_ms(before.median().unwrap_or(f64::NAN)),
                fmt_ms(before.quantile(0.75).unwrap_or(f64::NAN)),
                format!("{:.1}%", 100.0 * (1.0 - before.fraction_at_or_below(5.0))),
                format!("{:.1}%", 100.0 * (1.0 - before.fraction_at_or_below(15.0))),
            ],
            vec![
                "after (lazy)".into(),
                fmt_ms(after.quantile(0.25).unwrap_or(f64::NAN)),
                fmt_ms(after.median().unwrap_or(f64::NAN)),
                fmt_ms(after.quantile(0.75).unwrap_or(f64::NAN)),
                format!("{:.1}%", 100.0 * (1.0 - after.fraction_at_or_below(5.0))),
                format!("{:.1}%", 100.0 * (1.0 - after.fraction_at_or_below(15.0))),
            ],
        ],
    ));
    text.push_str(&format!(
        "mitigation rate: {:.1}% ({} of {} connect threads parsed; paper: 67.8%, 155 of 481)\n",
        100.0 * fig5.mitigation_rate,
        fig5.lazy_parses,
        fig5.total_requests
    ));
    text.push_str(&render_cdf_series("fig5a-before", &before, 30.0, 31));
    text.push_str(&render_cdf_series("fig5b-after", &after, 30.0, 31));
    let json = mop_json::json!({
        "mitigation_rate": fig5.mitigation_rate,
        "lazy_parses": fig5.lazy_parses,
        "total_requests": fig5.total_requests,
        "before_cdf": before.series(30.0, 31),
        "after_cdf": after.series(30.0, 31),
    });
    ExperimentOutput { id: "fig5".into(), text, json }
}

/// Runs Table 1 and renders it.
pub fn run_table1(seed: u64, packets: usize) -> ExperimentOutput {
    let t1 = Table1TunnelWrite::run(seed, packets);
    let labels = t1.direct.labels();
    let mut rows = Vec::new();
    rows.push(vec![
        "Total".to_string(),
        t1.direct.total().to_string(),
        t1.queue.total().to_string(),
        t1.old_put.total().to_string(),
        t1.new_put.total().to_string(),
    ]);
    for (i, label) in labels.iter().enumerate() {
        rows.push(vec![
            label.clone(),
            t1.direct.counts[i].to_string(),
            t1.queue.counts[i].to_string(),
            t1.old_put.counts[i].to_string(),
            t1.new_put.counts[i].to_string(),
        ]);
    }
    let [d, q, o, n] = t1.large_fractions();
    let mut text = render_table(
        "Table 1: delay of writing packets to the VPN tunnel",
        &["bin", "directWrite", "queueWrite", "oldPut", "newPut"],
        &rows,
    );
    text.push_str(&format!(
        ">1ms fractions: directWrite {:.2}%, queueWrite {:.2}%, oldPut {:.2}%, newPut {:.3}% \
         (paper: 3.4%, 0.65%, 5.8%, 0.075%)\n",
        d * 100.0,
        q * 100.0,
        o * 100.0,
        n * 100.0
    ));
    let json = mop_json::json!({
        "bins": labels,
        "directWrite": t1.direct.counts,
        "queueWrite": t1.queue.counts,
        "oldPut": t1.old_put.counts,
        "newPut": t1.new_put.counts,
        "large_fractions": [d, q, o, n],
    });
    ExperimentOutput { id: "table1".into(), text, json }
}

/// Runs Table 2 and renders it.
pub fn run_table2(seed: u64, connects: usize) -> ExperimentOutput {
    let t2 = Table2Accuracy::run(seed, connects);
    let rows: Vec<Vec<String>> = t2
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_ms(r.tcpdump_for_mopeye_ms),
                fmt_ms(r.mopeye_ms),
                fmt_ms(r.mopeye_delta_ms),
                fmt_ms(r.tcpdump_for_mobiperf_ms),
                fmt_ms(r.mobiperf_ms),
                fmt_ms(r.mobiperf_delta_ms),
            ]
        })
        .collect();
    let mut text = render_table(
        "Table 2: measurement accuracy of MopEye and MobiPerf (mean, ms)",
        &["dest", "tcpdump", "MopEye", "δ", "tcpdump", "MobiPerf", "δ"],
        &rows,
    );
    text.push_str(&format!(
        "worst MopEye δ = {:.2} ms (paper: ≤1 ms); best MobiPerf δ = {:.1} ms (paper: 12–79 ms)\n",
        t2.worst_mopeye_delta(),
        t2.best_mobiperf_delta()
    ));
    let json = mop_json::json!({
        "rows": t2.rows.iter().map(|r| mop_json::json!({
            "dest": &r.name,
            "tcpdump_mopeye": r.tcpdump_for_mopeye_ms,
            "mopeye": r.mopeye_ms,
            "mopeye_delta": r.mopeye_delta_ms,
            "tcpdump_mobiperf": r.tcpdump_for_mobiperf_ms,
            "mobiperf": r.mobiperf_ms,
            "mobiperf_delta": r.mobiperf_delta_ms,
        })).collect::<Vec<_>>(),
    });
    ExperimentOutput { id: "table2".into(), text, json }
}

/// Runs Table 3 and renders it.
pub fn run_table3(seed: u64, transfer_bytes: usize) -> ExperimentOutput {
    let t3 = Table3Throughput::run(seed, transfer_bytes);
    let (mop_down, mop_up) = t3.mopeye.delta_from(&t3.baseline);
    let (hay_down, hay_up) = t3.haystack.delta_from(&t3.baseline);
    let text = render_table(
        "Table 3: download/upload throughput overhead (Mbps)",
        &["direction", "Baseline", "MopEye", "Δ", "Haystack", "Δ"],
        &[
            vec![
                "Download".into(),
                fmt_ms(t3.baseline.download_mbps),
                fmt_ms(t3.mopeye.download_mbps),
                fmt_ms(mop_down),
                fmt_ms(t3.haystack.download_mbps),
                fmt_ms(hay_down),
            ],
            vec![
                "Upload".into(),
                fmt_ms(t3.baseline.upload_mbps),
                fmt_ms(t3.mopeye.upload_mbps),
                fmt_ms(mop_up),
                fmt_ms(t3.haystack.upload_mbps),
                fmt_ms(hay_up),
            ],
        ],
    );
    let json = mop_json::json!({
        "baseline": mop_json::json!({"down": t3.baseline.download_mbps, "up": t3.baseline.upload_mbps}),
        "mopeye": mop_json::json!({"down": t3.mopeye.download_mbps, "up": t3.mopeye.upload_mbps}),
        "haystack": mop_json::json!({"down": t3.haystack.download_mbps, "up": t3.haystack.upload_mbps}),
    });
    ExperimentOutput { id: "table3".into(), text, json }
}

/// Runs Table 4 and renders it.
pub fn run_table4(seed: u64, minutes: u64) -> ExperimentOutput {
    let t4 = Table4Resources::run(seed, minutes);
    let text = render_table(
        &format!("Table 4: resource overhead while streaming a {minutes}-minute HD video"),
        &["resource", "MopEye", "Haystack"],
        &[
            vec![
                "CPU".into(),
                format!("{:.2}%", t4.mopeye.cpu_percent),
                format!("{:.2}%", t4.haystack.cpu_percent),
            ],
            vec![
                "Battery".into(),
                format!("{:.1}%", t4.mopeye.battery_percent),
                format!("{:.1}%", t4.haystack.battery_percent),
            ],
            vec![
                "Memory".into(),
                format!("{:.0} MB", t4.mopeye.memory_mib),
                format!("{:.0} MB", t4.haystack.memory_mib),
            ],
        ],
    );
    let json = mop_json::json!({
        "mopeye": mop_json::json!({"cpu": t4.mopeye.cpu_percent, "battery": t4.mopeye.battery_percent, "memory_mib": t4.mopeye.memory_mib}),
        "haystack": mop_json::json!({"cpu": t4.haystack.cpu_percent, "battery": t4.haystack.battery_percent, "memory_mib": t4.haystack.memory_mib}),
    });
    ExperimentOutput { id: "table4".into(), text, json }
}

/// Runs every §4.2 dataset experiment and renders them.
pub fn run_crowd_experiments(dataset: &SyntheticDataset) -> Vec<ExperimentOutput> {
    let mut out = Vec::new();
    // Figure 6.
    let fig6 = Fig6Contribution::compute(dataset);
    out.push(ExperimentOutput {
        id: "fig6".into(),
        text: render_table(
            "Figure 6: measurements per user/app (bucketed, scaled)",
            &["bucket", "# users", "# apps"],
            &[">10K", "5K-10K", "1K-5K", "100-1K"]
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    vec![
                        b.to_string(),
                        fig6.users_per_bucket[i].to_string(),
                        fig6.apps_per_bucket[i].to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
        json: mop_json::json!({
            "users_per_bucket": fig6.users_per_bucket,
            "apps_per_bucket": fig6.apps_per_bucket,
        }),
    });
    // Figure 7.
    let fig7 = Fig7Countries::compute(dataset);
    out.push(ExperimentOutput {
        id: "fig7".into(),
        text: render_table(
            "Figure 7: top-20 user countries",
            &["country", "# devices"],
            &fig7.top.iter().map(|(c, n)| vec![c.clone(), n.to_string()]).collect::<Vec<_>>(),
        ),
        json: mop_json::json!({ "top": fig7.top }),
    });
    // Figure 8.
    let fig8 = Fig8Locations::compute(dataset);
    out.push(ExperimentOutput {
        id: "fig8".into(),
        text: format!(
            "Figure 8: {} measurement locations (lat/lon series in JSON output)\n",
            fig8.points.len()
        ),
        json: mop_json::json!({ "points": fig8.points }),
    });
    // Figure 9.
    let fig9 = Fig9AppRtt::compute(dataset);
    let mut fig9_text = render_table(
        "Figure 9: per-app RTT medians (ms)",
        &["slice", "median"],
        &[
            vec!["all".into(), fmt_ms(fig9.all.median().unwrap_or(f64::NAN))],
            vec!["WiFi".into(), fmt_ms(fig9.wifi.median().unwrap_or(f64::NAN))],
            vec!["cellular".into(), fmt_ms(fig9.cellular.median().unwrap_or(f64::NAN))],
            vec!["LTE".into(), fmt_ms(fig9.lte.median().unwrap_or(f64::NAN))],
            vec![
                format!("per-app medians ({} apps)", fig9.qualifying_apps),
                fmt_ms(fig9.per_app_medians.median().unwrap_or(f64::NAN)),
            ],
        ],
    );
    fig9_text.push_str("(paper: all 65, WiFi 58, cellular 84, LTE 76)\n");
    fig9_text.push_str(&render_sketch_series("fig9a-all", &fig9.all, 400.0, 41));
    fig9_text.push_str(&render_sketch_series("fig9a-wifi", &fig9.wifi, 400.0, 41));
    fig9_text.push_str(&render_sketch_series("fig9a-cellular", &fig9.cellular, 400.0, 41));
    fig9_text.push_str(&render_sketch_series("fig9b-per-app-medians", &fig9.per_app_medians, 400.0, 41));
    out.push(ExperimentOutput {
        id: "fig9".into(),
        text: fig9_text,
        json: mop_json::json!({
            "medians": mop_json::json!({
                "all": fig9.all.median(), "wifi": fig9.wifi.median(),
                "cellular": fig9.cellular.median(), "lte": fig9.lte.median(),
            }),
            "all_cdf": fig9.all.series(400.0, 41),
            "wifi_cdf": fig9.wifi.series(400.0, 41),
            "cellular_cdf": fig9.cellular.series(400.0, 41),
            "per_app_median_cdf": fig9.per_app_medians.series(400.0, 41),
        }),
    });
    // Table 5.
    let t5 = Table5Apps::compute(dataset);
    out.push(ExperimentOutput {
        id: "table5".into(),
        text: render_table(
            "Table 5: network performance of 16 representative apps",
            &["category", "app", "# RTT", "median (ms)", "paper (ms)"],
            &t5.rows
                .iter()
                .map(|(cat, app, n, m, p)| {
                    vec![cat.clone(), app.clone(), n.to_string(), fmt_ms(*m), fmt_ms(*p)]
                })
                .collect::<Vec<_>>(),
        ),
        json: mop_json::json!({ "rows": t5.rows }),
    });
    // Figure 10.
    let fig10 = Fig10Dns::compute(dataset);
    let mut fig10_text = render_table(
        "Figure 10: DNS RTT medians (ms)",
        &["slice", "median"],
        &[
            vec!["all".into(), fmt_ms(fig10.all.median().unwrap_or(f64::NAN))],
            vec!["WiFi".into(), fmt_ms(fig10.wifi.median().unwrap_or(f64::NAN))],
            vec!["cellular".into(), fmt_ms(fig10.cellular.median().unwrap_or(f64::NAN))],
            vec!["4G".into(), fmt_ms(fig10.lte.median().unwrap_or(f64::NAN))],
            vec!["3G".into(), fmt_ms(fig10.umts3g.median().unwrap_or(f64::NAN))],
            vec!["2G".into(), fmt_ms(fig10.gprs2g.median().unwrap_or(f64::NAN))],
        ],
    );
    fig10_text.push_str("(paper: all 42, WiFi 33, cellular 61, 4G 56, 3G 105, 2G 755)\n");
    fig10_text.push_str(&render_sketch_series("fig10a-all", &fig10.all, 400.0, 41));
    fig10_text.push_str(&render_sketch_series("fig10b-4g", &fig10.lte, 400.0, 41));
    fig10_text.push_str(&render_sketch_series("fig10b-3g", &fig10.umts3g, 400.0, 41));
    fig10_text.push_str(&render_sketch_series("fig10b-2g", &fig10.gprs2g, 400.0, 41));
    out.push(ExperimentOutput {
        id: "fig10".into(),
        text: fig10_text,
        json: mop_json::json!({
            "medians": mop_json::json!({
                "all": fig10.all.median(), "wifi": fig10.wifi.median(),
                "cellular": fig10.cellular.median(), "lte": fig10.lte.median(),
                "umts3g": fig10.umts3g.median(), "gprs2g": fig10.gprs2g.median(),
            }),
        }),
    });
    // Table 6.
    let t6 = Table6IspDns::compute(dataset);
    out.push(ExperimentOutput {
        id: "table6".into(),
        text: render_table(
            "Table 6: DNS performance of 15 LTE operators",
            &["ISP", "country", "# RTT", "median (ms)", "paper (ms)"],
            &t6.rows
                .iter()
                .map(|(isp, country, n, m, p)| {
                    vec![isp.clone(), country.clone(), n.to_string(), fmt_ms(*m), fmt_ms(*p)]
                })
                .collect::<Vec<_>>(),
        ),
        json: mop_json::json!({ "rows": t6.rows }),
    });
    // Figure 11.
    let fig11 = Fig11IspDns::compute(dataset);
    let mut fig11_text = render_table(
        "Figure 11: DNS performance of four LTE ISPs",
        &["ISP", "median (ms)", "<10ms", "min (ms)"],
        &fig11
            .isps
            .iter()
            .map(|(name, cdf)| {
                vec![
                    name.clone(),
                    fmt_ms(cdf.median().unwrap_or(f64::NAN)),
                    format!("{:.1}%", 100.0 * cdf.fraction_at_or_below(10.0)),
                    fmt_ms(cdf.quantile(0.0).unwrap_or(f64::NAN)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for (name, cdf) in &fig11.isps {
        fig11_text.push_str(&render_sketch_series(&format!("fig11-{name}"), cdf, 400.0, 41));
    }
    out.push(ExperimentOutput {
        id: "fig11".into(),
        text: fig11_text,
        json: mop_json::json!({
            "isps": fig11.isps.iter().map(|(n, c)| mop_json::json!({
                "isp": n,
                "median": c.median(),
                "below_10ms": c.fraction_at_or_below(10.0),
                "cdf": c.series(400.0, 41),
            })).collect::<Vec<_>>(),
        }),
    });
    // Case studies.
    let whatsapp = CaseWhatsapp::compute(dataset);
    out.push(ExperimentOutput {
        id: "case1".into(),
        text: format!(
            "Case 1 (WhatsApp): {} whatsapp.net domains observed; SoftLayer median {} ms \
             (paper 261), CDN median {} ms, overall {} ms (paper 133).\n\
             Per-network medians over the SoftLayer domains ({} networks): \
             <100ms: {}, 100-200ms: {}, 200-300ms: {}, >300ms: {} (paper: 2, 6, 8, 4)\n",
            whatsapp.domains_observed,
            fmt_ms(whatsapp.softlayer_median_ms),
            fmt_ms(whatsapp.cdn_median_ms),
            fmt_ms(whatsapp.overall_median_ms),
            whatsapp.networks_analysed,
            whatsapp.network_buckets[0],
            whatsapp.network_buckets[1],
            whatsapp.network_buckets[2],
            whatsapp.network_buckets[3],
        ),
        json: mop_json::json!({
            "domains_observed": whatsapp.domains_observed,
            "softlayer_median_ms": whatsapp.softlayer_median_ms,
            "cdn_median_ms": whatsapp.cdn_median_ms,
            "overall_median_ms": whatsapp.overall_median_ms,
            "network_buckets": whatsapp.network_buckets,
        }),
    });
    let jio = CaseJio::compute(dataset);
    out.push(ExperimentOutput {
        id: "case2".into(),
        text: format!(
            "Case 2 (Jio): per-app median {} ms over {} measurements (paper 281 over 76,717); \
             DNS median {} ms (paper 59).\nDomain medians on Jio: <100ms: {}, 100-200: {}, \
             200-300: {}, 300-400: {}, >400: {}.\n{} of {} domains seen on both Jio and other \
             LTE networks are faster elsewhere, by {} ms on average (paper: 63 of 71, 138 ms).\n",
            fmt_ms(jio.app_median_ms),
            jio.app_measurements,
            fmt_ms(jio.dns_median_ms),
            jio.domain_buckets[0],
            jio.domain_buckets[1],
            jio.domain_buckets[2],
            jio.domain_buckets[3],
            jio.domain_buckets[4],
            jio.domains_better_off_jio,
            jio.domains_compared,
            fmt_ms(jio.mean_advantage_ms),
        ),
        json: mop_json::json!({
            "app_median_ms": jio.app_median_ms,
            "dns_median_ms": jio.dns_median_ms,
            "domain_buckets": jio.domain_buckets,
            "domains_better_off_jio": jio.domains_better_off_jio,
            "domains_compared": jio.domains_compared,
            "mean_advantage_ms": jio.mean_advantage_ms,
        }),
    });
    out
}

/// Runs a rush-hour fleet scenario with raw-sample retention disabled and
/// returns the fleet report — every measurement lives only in the merged
/// [`AggregateStore`], so analytics memory is O(apps × networks), not
/// O(samples). This is the engine side of the `report` binary.
pub fn run_fleet_scenario_lean(users: usize, shards: usize, seed: u64) -> FleetReport {
    run_scenario_lean(&Scenario::rush_hour(users, seed), shards, seed, CongestionAlgo::Reno)
}

/// Like [`run_fleet_scenario_lean`] but over an arbitrary scenario and
/// congestion-control choice — the engine side of the `report` binary's
/// `--scenario` / `--cc` flags. On fault-capable scenarios (lossy 3G, the
/// degraded commute) the returned report's relay counters carry the loss
/// recovery tallies (retransmits, fast retransmits, RTO fires, SACKed
/// segments).
pub fn run_scenario_lean(
    scenario: &Scenario,
    shards: usize,
    seed: u64,
    congestion: CongestionAlgo,
) -> FleetReport {
    let mut config = FleetConfig::new(shards).with_seed(seed).with_congestion(congestion);
    config.engine = config.engine.with_retain_samples(false);
    let fleet = FleetEngine::new(config, scenario.network());
    fleet.run(scenario.generate())
}

/// Renders the full crowd report (per-network medians and CDFs, top apps,
/// per-app diagnosis, ISP ranking) from a run's merged aggregates.
pub fn render_crowd_report(aggregates: &AggregateStore) -> ExperimentOutput {
    let summary = CrowdSummary::compute(aggregates);
    let mut text = String::new();
    // --- per-network overview -------------------------------------------
    let mut rows = Vec::new();
    let overview = |label: &str, sketch: &mop_measure::RttSketch| -> Vec<String> {
        vec![
            label.to_string(),
            sketch.count().to_string(),
            fmt_ms(sketch.median().unwrap_or(f64::NAN)),
            fmt_ms(sketch.quantile(0.95).unwrap_or(f64::NAN)),
            fmt_ms(sketch.min().unwrap_or(f64::NAN)),
            fmt_ms(sketch.max().unwrap_or(f64::NAN)),
        ]
    };
    rows.push(overview("TCP (all)", &summary.tcp));
    for (net, sketch) in &summary.tcp_by_network {
        if !sketch.is_empty() {
            rows.push(overview(&format!("TCP {}", net.label()), sketch));
        }
    }
    rows.push(overview("DNS (all)", &summary.dns));
    for (net, sketch) in &summary.dns_by_network {
        if !sketch.is_empty() {
            rows.push(overview(&format!("DNS {}", net.label()), sketch));
        }
    }
    text.push_str(&render_table(
        &format!("Crowd report: {} devices, streaming sketches", summary.devices),
        &["slice", "# RTT", "median", "p95", "min", "max"],
        &rows,
    ));
    // --- top apps --------------------------------------------------------
    let app_rows: Vec<Vec<String>> = summary
        .apps
        .iter()
        .take(10)
        .map(|(app, count, sketch)| {
            vec![
                app.clone(),
                count.to_string(),
                fmt_ms(sketch.median().unwrap_or(f64::NAN)),
                fmt_ms(sketch.quantile(0.95).unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    text.push_str(&render_table(
        "Top apps by contribution",
        &["app", "# RTT", "median", "p95"],
        &app_rows,
    ));
    // --- diagnosis -------------------------------------------------------
    let diagnoses = diagnose_apps(aggregates, DiagnosisConfig::default());
    let diag_rows: Vec<Vec<String>> = diagnoses
        .iter()
        .map(|d| {
            vec![
                d.app.clone(),
                d.verdict.label().to_string(),
                fmt_ms(d.app_median_ms),
                fmt_ms(d.baseline_median_ms),
                d.samples.to_string(),
            ]
        })
        .collect();
    text.push_str(&render_table(
        "Per-app diagnosis (app-slow vs network-slow)",
        &["app", "verdict", "app median", "net baseline", "# RTT"],
        &diag_rows,
    ));
    // --- ISP ranking -----------------------------------------------------
    let ranking = rank_isps(aggregates, MeasurementKind::Tcp, 20);
    let isp_rows: Vec<Vec<String>> = ranking
        .iter()
        .map(|r| {
            vec![
                r.isp.clone(),
                fmt_ms(r.median_ms),
                fmt_ms(r.p95_ms),
                r.samples.to_string(),
            ]
        })
        .collect();
    text.push_str(&render_table(
        "ISP ranking (TCP, fastest first)",
        &["isp", "median", "p95", "# RTT"],
        &isp_rows,
    ));
    text.push_str(&render_sketch_series("crowd-tcp", &summary.tcp, 400.0, 41));
    if !summary.dns.is_empty() {
        text.push_str(&render_sketch_series("crowd-dns", &summary.dns, 400.0, 41));
    }
    let json = mop_json::json!({
        "devices": summary.devices as u64,
        "cells": aggregates.cell_count() as u64,
        "samples": aggregates.sample_count(),
        "tcp": mop_json::json!({
            "count": summary.tcp.count(),
            "median_ms": summary.tcp.median(),
            "p95_ms": summary.tcp.quantile(0.95),
            "cdf": summary.tcp.series(400.0, 41),
        }),
        "dns": mop_json::json!({
            "count": summary.dns.count(),
            "median_ms": summary.dns.median(),
            "p95_ms": summary.dns.quantile(0.95),
        }),
        "by_network": summary.tcp_by_network.iter().filter(|(_, s)| !s.is_empty()).map(|(net, s)| mop_json::json!({
            "network": net.label(),
            "count": s.count(),
            "median_ms": s.median(),
        })).collect::<Vec<_>>(),
        "apps": summary.apps.iter().take(10).map(|(app, count, s)| mop_json::json!({
            "app": app,
            "count": *count,
            "median_ms": s.median(),
        })).collect::<Vec<_>>(),
        "diagnosis": diagnoses.iter().map(|d| mop_json::json!({
            "app": &d.app,
            "verdict": d.verdict.label(),
            "app_median_ms": d.app_median_ms,
            "baseline_median_ms": d.baseline_median_ms,
            "samples": d.samples,
        })).collect::<Vec<_>>(),
        "isps": ranking.iter().map(|r| mop_json::json!({
            "isp": &r.isp,
            "median_ms": r.median_ms,
            "p95_ms": r.p95_ms,
            "samples": r.samples,
        })).collect::<Vec<_>>(),
    });
    ExperimentOutput { id: "fleet-crowd".into(), text, json }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_experiment_renderings_contain_their_headline_numbers() {
        let fig5 = run_fig5(1);
        assert!(fig5.text.contains("mitigation rate"));
        assert_eq!(fig5.id, "fig5");
        assert!(fig5.json["total_requests"].as_u64().unwrap() > 400);
        let t1 = run_table1(1, 800);
        assert!(t1.text.contains("directWrite"));
        assert!(t1.json["large_fractions"].as_array().unwrap().len() == 4);
    }

    #[test]
    fn fleet_crowd_report_renders_from_a_lean_run() {
        let report = run_fleet_scenario_lean(120, 2, 7);
        // Lean mode: no raw samples, everything in the aggregates.
        assert!(report.merged.samples.is_empty());
        assert!(report.merged.aggregates.sample_count() > 100);
        let output = render_crowd_report(&report.merged.aggregates);
        assert_eq!(output.id, "fleet-crowd");
        assert!(output.text.contains("Per-app diagnosis"));
        assert!(output.text.contains("ISP ranking"));
        assert!(output.json["samples"].as_u64().unwrap() > 100);
        assert!(!output.json["apps"].as_array().unwrap().is_empty());
    }

    #[test]
    fn crowd_experiments_cover_every_figure_and_table() {
        let dataset = crowd_dataset(0.002);
        let outputs = run_crowd_experiments(&dataset);
        let ids: Vec<&str> = outputs.iter().map(|o| o.id.as_str()).collect();
        for expected in
            ["fig6", "fig7", "fig8", "fig9", "table5", "fig10", "table6", "fig11", "case1", "case2"]
        {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        for output in &outputs {
            assert!(!output.text.is_empty());
        }
    }
}
