//! Regenerates every table and figure of the MopEye evaluation.
//!
//! Usage:
//!
//! ```text
//! repro                     # run everything at the default scale
//! repro --experiment table2 # run a single experiment
//! repro --scale 0.01        # change the crowd-dataset scale
//! repro --out target/repro  # where to write text/JSON outputs
//! ```

use std::fs;
use std::path::PathBuf;

use mop_bench::{
    crowd_dataset, run_crowd_experiments, run_fig5, run_table1, run_table2, run_table3,
    run_table4, ExperimentOutput, REPRO_SEED,
};

struct Options {
    experiment: Option<String>,
    scale: f64,
    out_dir: PathBuf,
    video_minutes: u64,
}

fn parse_args() -> Options {
    let mut options = Options {
        experiment: None,
        scale: 0.01,
        out_dir: PathBuf::from("target/repro"),
        video_minutes: 58,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" => options.experiment = args.next(),
            "--scale" => {
                options.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.scale)
            }
            "--out" => {
                if let Some(dir) = args.next() {
                    options.out_dir = PathBuf::from(dir);
                }
            }
            "--video-minutes" => {
                options.video_minutes =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or(options.video_minutes)
            }
            "--help" | "-h" => {
                eprintln!("usage: repro [--experiment <id>] [--scale <f>] [--out <dir>] [--video-minutes <n>]");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    options
}

fn wanted(options: &Options, id: &str) -> bool {
    options.experiment.as_deref().map(|e| e == id).unwrap_or(true)
}

fn main() {
    let options = parse_args();
    fs::create_dir_all(&options.out_dir).expect("create output directory");
    let mut outputs: Vec<ExperimentOutput> = Vec::new();

    if wanted(&options, "fig5") {
        outputs.push(run_fig5(REPRO_SEED));
    }
    if wanted(&options, "table1") {
        outputs.push(run_table1(REPRO_SEED, 5_000));
    }
    if wanted(&options, "table2") {
        outputs.push(run_table2(REPRO_SEED, 10));
    }
    if wanted(&options, "table3") {
        outputs.push(run_table3(REPRO_SEED, 24 * 1024 * 1024));
    }
    if wanted(&options, "table4") {
        outputs.push(run_table4(REPRO_SEED, options.video_minutes));
    }
    let crowd_ids =
        ["fig6", "fig7", "fig8", "fig9", "table5", "fig10", "table6", "fig11", "case1", "case2"];
    if crowd_ids.iter().any(|id| wanted(&options, id)) {
        eprintln!("generating crowd dataset (scale {})...", options.scale);
        let dataset = crowd_dataset(options.scale);
        eprintln!("dataset: {} records", dataset.store.len());
        outputs.extend(
            run_crowd_experiments(&dataset).into_iter().filter(|o| wanted(&options, &o.id)),
        );
    }

    for output in &outputs {
        println!("==================================================================");
        println!("{}", output.text);
        let text_path = options.out_dir.join(format!("{}.txt", output.id));
        let json_path = options.out_dir.join(format!("{}.json", output.id));
        fs::write(&text_path, &output.text).expect("write text output");
        fs::write(&json_path, mop_json::to_string_pretty(&output.json))
            .expect("write json output");
    }
    eprintln!(
        "wrote {} experiments to {}",
        outputs.len(),
        options.out_dir.display()
    );
}
