//! `mop-serve` — the long-lived crowd control plane as a process.
//!
//! Wraps [`mop_server`] behind the two real transports. A server speaks
//! the line-delimited JSON protocol documented in `docs/SERVER.md`:
//! operators inject scenarios, stream per-epoch deltas, query diagnoses
//! and checkpoint/resume the fleet without stopping it. The same binary
//! doubles as a scriptable client (`--connect`) and as the batch
//! reference (`--oracle`) the CI integration job compares digests
//! against.
//!
//! Usage:
//!
//! ```text
//! mop-serve --stdio                      # serve one session on stdin/stdout
//! mop-serve --socket /tmp/mop.sock      # serve sessions on a Unix socket
//! mop-serve --socket /tmp/mop.sock --resume day.ckpt
//! #                                      # boot from a server checkpoint
//! mop-serve --connect /tmp/mop.sock     # client: requests on stdin,
//! #                                      # replies (and events) on stdout
//! mop-serve --oracle rush-hour --users 40 --seed 7
//! #                                      # print the batch reference digest
//! mop-serve --shards 8 --seed 7 --cc cubic --epoch-width-ms 250 --window 32
//! ```
//!
//! The plane's digest is shard-invariant, so `--shards` only changes how
//! each step is parallelised — never a reply byte (except `server.info`,
//! which reports it).

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use mop_server::{serve_stdio, serve_unix, PlaneConfig, Server};
use mop_simnet::SimDuration;
use mopeye_core::CongestionAlgo;

enum Mode {
    Stdio,
    Socket(PathBuf),
    Connect(PathBuf),
    Oracle(String),
}

struct Options {
    mode: Mode,
    users: usize,
    resume: Option<PathBuf>,
    plane: PlaneConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        mode: Mode::Stdio,
        users: 2_000,
        resume: None,
        plane: PlaneConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--stdio" => options.mode = Mode::Stdio,
            "--socket" => options.mode = Mode::Socket(value("--socket")?.into()),
            "--connect" => options.mode = Mode::Connect(value("--connect")?.into()),
            "--oracle" => options.mode = Mode::Oracle(value("--oracle")?),
            "--resume" => options.resume = Some(value("--resume")?.into()),
            "--users" => {
                options.users =
                    value("--users")?.parse().map_err(|e| format!("--users: {e}"))?
            }
            "--shards" => {
                options.plane.shards =
                    value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--seed" => {
                options.plane.seed =
                    value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--cc" => {
                options.plane.congestion = match value("--cc")?.as_str() {
                    "reno" => CongestionAlgo::Reno,
                    "cubic" => CongestionAlgo::Cubic,
                    other => return Err(format!("--cc: unknown algorithm {other:?}")),
                }
            }
            "--epoch-width-ms" => {
                let ms: u64 =
                    value("--epoch-width-ms")?.parse().map_err(|e| format!("--epoch-width-ms: {e}"))?;
                options.plane.epoch_width = SimDuration::from_millis(ms);
            }
            "--window" => {
                options.plane.epoch_window =
                    value("--window")?.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--help" | "-h" => {
                println!("usage: mop-serve [--stdio | --socket PATH | --connect PATH | --oracle SCENARIO]");
                println!("                 [--resume CKPT] [--users N] [--shards N] [--seed N]");
                println!("                 [--cc reno|cubic] [--epoch-width-ms N] [--window N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(options)
}

/// Boots a server, optionally resuming a checkpoint file before serving.
fn boot(options: &Options) -> Result<Server, String> {
    let mut server = Server::new(options.plane);
    if let Some(path) = &options.resume {
        let request = format!(
            "{{\"id\":0,\"method\":\"fleet.resume\",\"params\":{{\"path\":{}}}}}",
            mop_json::to_string(&mop_json::Value::from(path.to_string_lossy().as_ref()))
        );
        let turn = server.handle_line(&request);
        let reply = mop_json::from_str(&turn.frames[0]).map_err(|e| e.to_string())?;
        if let Some(message) = reply["error"]["message"].as_str() {
            return Err(format!("--resume {}: {message}", path.display()));
        }
        eprintln!(
            "resumed {} at epoch {} ({} pending flows)",
            path.display(),
            reply["result"]["cursor_epoch"].as_u64().unwrap_or(0),
            reply["result"]["pending"].as_u64().unwrap_or(0),
        );
    }
    Ok(server)
}

/// The uninterrupted batch reference: inject one scenario, drain it in a
/// single step, print the digest. The control-plane equivalence tests
/// (and the CI integration job) compare server digests against this.
fn oracle(options: &Options, kind: &str) -> Result<(), String> {
    let mut plane = mop_server::ControlPlane::new(options.plane);
    let (_, flows) = plane.inject(kind, options.users, options.plane.seed)?;
    let outcome = plane.step(plane.epochs_to_drain());
    println!("scenario: {kind}  users: {}  flows: {flows}", options.users);
    println!("fleet digest: {}", mop_server::digest_str(outcome.digest));
    Ok(())
}

/// A line-oriented client: forwards stdin lines as requests, prints every
/// frame the server sends back, stops after the reply to its last request.
fn connect(path: &std::path::Path) -> Result<(), String> {
    let mut client = mop_server::connect_unix(path)
        .map_err(|e| format!("cannot connect to {}: {e}", path.display()))?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let request = mop_json::from_str(&line).map_err(|e| format!("bad request: {e}"))?;
        let Some(method) = request["method"].as_str() else {
            return Err("request has no \"method\"".into());
        };
        let reply = client
            .call(method, request["params"].clone())
            .map_err(|e| format!("call failed: {e}"))?;
        for event in &reply.events {
            writeln!(out, "{}", mop_json::to_string(event)).map_err(|e| e.to_string())?;
        }
        writeln!(out, "{}", mop_json::to_string(&reply.response)).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let options = parse_args()?;
    match &options.mode {
        Mode::Oracle(kind) => oracle(&options, kind),
        Mode::Connect(path) => connect(path),
        Mode::Stdio => {
            let mut server = boot(&options)?;
            serve_stdio(&mut server).map_err(|e| e.to_string())?;
            Ok(())
        }
        Mode::Socket(path) => {
            let mut server = boot(&options)?;
            eprintln!("serving on {}", path.display());
            serve_unix(&mut server, path).map_err(|e| e.to_string())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mop-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
