//! Streaming crowd-analytics report over a fleet scenario.
//!
//! Runs a fleet scenario on the sharded relay engine with raw-sample
//! retention **disabled** — every RTT measurement is folded into the shard
//! sinks' mergeable sketches as it is produced, and the crowd report
//! (per-network medians and CDFs, top apps, app-slow-vs-network-slow
//! diagnosis, ISP ranking) is rendered from the merged aggregates. The
//! record vector is never materialised, so analytics memory is
//! O(apps × networks) whatever the connection count.
//!
//! Usage:
//!
//! ```text
//! report                      # 2,000-user rush hour on 4 shards
//! report --users 13000        # ~100k connections
//! report --shards 8 --seed 7  # shard count / seed
//! report --scenario degraded-commute --cc cubic
//! #                           # lossy 3G → LTE commute, CUBIC recovery
//! report --out target/report  # also write report.txt / report.json there
//! ```

use std::fs;
use std::path::PathBuf;

use mop_analytics::render::{render_loss_recovery, LossRecoverySummary};
use mop_bench::{render_crowd_report, run_scenario_lean};
use mop_dataset::Scenario;
use mopeye_core::CongestionAlgo;

struct Options {
    users: usize,
    shards: usize,
    seed: u64,
    scenario: String,
    congestion: CongestionAlgo,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut options = Options {
        users: 2_000,
        shards: 4,
        seed: 2017,
        scenario: "rush-hour".into(),
        congestion: CongestionAlgo::Reno,
        out_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--users" => {
                options.users = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.users)
            }
            "--shards" => {
                options.shards =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or(options.shards)
            }
            "--seed" => {
                options.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.seed)
            }
            "--scenario" => {
                options.scenario = args.next().unwrap_or(options.scenario);
            }
            "--cc" => {
                options.congestion = match args.next().as_deref() {
                    Some("cubic") => CongestionAlgo::Cubic,
                    _ => CongestionAlgo::Reno,
                }
            }
            "--out" => options.out_dir = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!(
                    "usage: report [--users <n>] [--shards <n>] [--seed <n>] \
                     [--scenario rush-hour|flash-crowd|degraded-commute] \
                     [--cc reno|cubic] [--out <dir>]"
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let scenario = match options.scenario.as_str() {
        "rush-hour" => Scenario::rush_hour(options.users, options.seed),
        "flash-crowd" => Scenario::flash_crowd(options.users, options.seed),
        "degraded-commute" => Scenario::degraded_commute(options.users, options.seed),
        other => {
            eprintln!("unknown scenario {other:?}; expected rush-hour, flash-crowd or degraded-commute");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    let report = run_scenario_lean(&scenario, options.shards, options.seed, options.congestion);
    let ran_in = started.elapsed().as_secs_f64();
    let output = render_crowd_report(&report.merged.aggregates);
    println!("{}", output.text);
    let relay = &report.merged.relay;
    let recovery = LossRecoverySummary {
        congestion: match options.congestion {
            CongestionAlgo::Reno => "reno",
            CongestionAlgo::Cubic => "cubic",
        },
        retransmits: relay.retransmits,
        fast_retransmits: relay.fast_retransmits,
        rto_fires: relay.rto_fires,
        sacked_segments: relay.sacked_segments,
    };
    if recovery.any_fired() {
        println!("{}", render_loss_recovery(&recovery));
    }
    println!(
        "run: {} ({} users, {} shards, seed {}): {} flows, {} samples into {} sketch cells \
         (raw vector: {} entries), digest {:016x}, {ran_in:.1}s wall",
        scenario.spec().name,
        options.users,
        options.shards,
        options.seed,
        report.merged.flows.len(),
        report.merged.aggregates.sample_count(),
        report.merged.aggregates.cell_count(),
        report.merged.samples.len(),
        report.digest(),
    );
    if let Some(dir) = options.out_dir {
        fs::create_dir_all(&dir).expect("create output directory");
        fs::write(dir.join("report.txt"), &output.text).expect("write report.txt");
        fs::write(dir.join("report.json"), mop_json::to_string_pretty(&output.json))
            .expect("write report.json");
        eprintln!("wrote {}/report.txt and report.json", dir.display());
    }
}
