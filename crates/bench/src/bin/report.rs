//! Streaming crowd-analytics report over a fleet scenario.
//!
//! Runs a fleet scenario on the sharded relay engine with raw-sample
//! retention **disabled** — every RTT measurement is folded into the shard
//! sinks' mergeable sketches as it is produced, and the crowd report
//! (per-network medians and CDFs, top apps, app-slow-vs-network-slow
//! diagnosis, ISP ranking) is rendered from the merged aggregates. The
//! record vector is never materialised, so analytics memory is
//! O(apps × networks) whatever the connection count.
//!
//! The `diurnal` scenario is the longitudinal mode: a simulated day whose
//! samples are additionally stamped into per-hour epoch windows, rendered
//! as a time series (`--epochs`) and diagnosed for mid-day ISP degradations
//! vs app regressions. Any epoch boundary is a checkpoint cut:
//! `--checkpoint` saves the run's state there, `--resume` completes it —
//! bit-identically to the uninterrupted run, at any shard count.
//!
//! Usage:
//!
//! ```text
//! report                        # 2,000-user rush hour on 4 shards
//! report --users 13000          # ~100k connections
//! report --shards 8 --seed 7    # shard count / seed
//! report --scenario degraded-commute --cc cubic
//! #                             # lossy 3G → LTE commute, CUBIC recovery
//! report --scenario diurnal --epochs
//! #                             # a simulated day with the per-hour table
//! report --scenario diurnal --checkpoint day.ckpt --cut-epoch 12
//! #                             # run hours 0-11, save the rest
//! report --scenario diurnal --resume day.ckpt --shards 8
//! #                             # finish the day on a different fleet
//! report --out target/report    # also write report.txt / report.json there
//! ```

use std::fs;
use std::path::PathBuf;

use mop_analytics::render::{render_loss_recovery, LossRecoverySummary};
use mop_analytics::{diagnose_trends, render_epoch_table, render_table, TrendConfig};
use mop_bench::{render_crowd_report, run_scenario_lean};
use mop_dataset::{DiurnalScenario, Scenario};
use mop_simnet::{SimDuration, SimNetworkBuilder};
use mop_tun::FlowSpec;
use mopeye_core::{
    epoch_boundary, CongestionAlgo, FleetConfig, FleetEngine, FleetCheckpoint, FleetReport,
};

struct Options {
    users: usize,
    shards: usize,
    seed: u64,
    scenario: String,
    congestion: CongestionAlgo,
    out_dir: Option<PathBuf>,
    epochs: bool,
    profile: bool,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    cut_epoch: Option<u64>,
}

fn parse_args() -> Options {
    let mut options = Options {
        users: 2_000,
        shards: 4,
        seed: 2017,
        scenario: "rush-hour".into(),
        congestion: CongestionAlgo::Reno,
        out_dir: None,
        epochs: false,
        profile: false,
        checkpoint: None,
        resume: None,
        cut_epoch: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--users" => {
                options.users = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.users)
            }
            "--shards" => {
                options.shards =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or(options.shards)
            }
            "--seed" => {
                options.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.seed)
            }
            "--scenario" => {
                options.scenario = args.next().unwrap_or(options.scenario);
            }
            "--cc" => {
                options.congestion = match args.next().as_deref() {
                    Some("cubic") => CongestionAlgo::Cubic,
                    _ => CongestionAlgo::Reno,
                }
            }
            "--out" => options.out_dir = args.next().map(PathBuf::from),
            "--epochs" => options.epochs = true,
            "--profile" => options.profile = true,
            "--checkpoint" => options.checkpoint = args.next().map(PathBuf::from),
            "--resume" => options.resume = args.next().map(PathBuf::from),
            "--cut-epoch" => options.cut_epoch = args.next().and_then(|v| v.parse().ok()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: report [--users <n>] [--shards <n>] [--seed <n>] \
                     [--scenario rush-hour|flash-crowd|degraded-commute|diurnal] \
                     [--cc reno|cubic] [--epochs] [--profile] \
                     [--checkpoint <file> [--cut-epoch <n>]] \
                     [--resume <file>] [--out <dir>]\n\
                     --profile prints the per-phase wall-clock table; build with \
                     `--features profiling` or the table is empty.\n\
                     resume must use the same --scenario/--users/--seed the checkpoint was \
                     saved with; --shards may differ freely."
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    options
}

/// The scenario being run: a classic burst scenario or the longitudinal day.
enum Plan {
    Classic(Scenario),
    Diurnal(DiurnalScenario),
}

impl Plan {
    fn name(&self) -> String {
        match self {
            Plan::Classic(scenario) => scenario.spec().name.clone(),
            Plan::Diurnal(day) => day.name().to_string(),
        }
    }

    fn network(&self) -> SimNetworkBuilder {
        match self {
            Plan::Classic(scenario) => scenario.network(),
            Plan::Diurnal(day) => day.network(),
        }
    }

    fn generate(&self) -> Vec<FlowSpec> {
        match self {
            Plan::Classic(scenario) => scenario.generate(),
            Plan::Diurnal(day) => day.generate(),
        }
    }

    /// The epoch width windowed runs use: one virtual hour for the day,
    /// an eighth of the arrival window for the burst scenarios.
    fn epoch_width(&self) -> SimDuration {
        match self {
            Plan::Classic(scenario) => {
                SimDuration::from_nanos((scenario.spec().duration.as_nanos() / 8).max(1))
            }
            Plan::Diurnal(_) => DiurnalScenario::virtual_hour(),
        }
    }

    /// The default checkpoint cut: mid-day for the diurnal scenario, half
    /// the eight window epochs otherwise.
    fn default_cut_epoch(&self) -> u64 {
        match self {
            Plan::Classic(_) => 4,
            Plan::Diurnal(_) => 12,
        }
    }
}

fn main() {
    let options = parse_args();
    let plan = match options.scenario.as_str() {
        "rush-hour" => Plan::Classic(Scenario::rush_hour(options.users, options.seed)),
        "flash-crowd" => Plan::Classic(Scenario::flash_crowd(options.users, options.seed)),
        "degraded-commute" => {
            Plan::Classic(Scenario::degraded_commute(options.users, options.seed))
        }
        "diurnal" => Plan::Diurnal(Scenario::diurnal(options.users, options.seed)),
        other => {
            eprintln!(
                "unknown scenario {other:?}; expected rush-hour, flash-crowd, \
                 degraded-commute or diurnal"
            );
            std::process::exit(2);
        }
    };
    // Epoch windows are on for the longitudinal scenario and whenever the
    // epoch table or a checkpoint cut is requested.
    let windowed = options.epochs
        || options.checkpoint.is_some()
        || options.resume.is_some()
        || matches!(plan, Plan::Diurnal(_));
    let started = std::time::Instant::now();
    let report = run_plan(&plan, &options, windowed);
    let Some(report) = report else { return };
    let ran_in = started.elapsed().as_secs_f64();
    let output = render_crowd_report(&report.merged.aggregates);
    println!("{}", output.text);
    if let Some(windows) = &report.merged.windows {
        if options.epochs {
            println!("{}", render_epoch_table("Per-epoch TCP RTT (live window)", windows));
        }
        let trends = diagnose_trends(windows, TrendConfig::default());
        if !trends.is_empty() {
            let rows: Vec<Vec<String>> = trends
                .iter()
                .map(|t| {
                    vec![
                        t.subject.clone(),
                        t.samples.to_string(),
                        format!("{:.1}", t.early_median_ms),
                        format!("{:.1}", t.late_median_ms),
                        format!("{:.2}x", t.ratio()),
                        t.verdict.label().to_string(),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(
                    "Time-series diagnosis (early vs late epochs)",
                    &["subject", "samples", "early p50", "late p50", "ratio", "verdict"],
                    &rows,
                )
            );
        }
    }
    let relay = &report.merged.relay;
    let recovery = LossRecoverySummary {
        congestion: match options.congestion {
            CongestionAlgo::Reno => "reno",
            CongestionAlgo::Cubic => "cubic",
        },
        retransmits: relay.retransmits,
        fast_retransmits: relay.fast_retransmits,
        rto_fires: relay.rto_fires,
        sacked_segments: relay.sacked_segments,
    };
    if recovery.any_fired() {
        println!("{}", render_loss_recovery(&recovery));
    }
    println!(
        "run: {} ({} users, {} shards, seed {}): {} flows, {} samples into {} sketch cells \
         (raw vector: {} entries), digest {:016x}, {ran_in:.1}s wall",
        plan.name(),
        options.users,
        options.shards,
        options.seed,
        report.merged.flows.len(),
        report.merged.aggregates.sample_count(),
        report.merged.aggregates.cell_count(),
        report.merged.samples.len(),
        report.digest(),
    );
    if options.profile {
        let table = mop_simnet::profiling::render_table(&report.merged.profile);
        if table.is_empty() {
            eprintln!(
                "--profile: no data; {}",
                if mop_simnet::Profiler::enabled() {
                    "the run recorded no phases"
                } else {
                    "rebuild with `--features profiling` to enable the timers"
                }
            );
        } else {
            println!("{table}");
        }
    }
    if let Some(dir) = options.out_dir {
        fs::create_dir_all(&dir).expect("create output directory");
        fs::write(dir.join("report.txt"), &output.text).expect("write report.txt");
        fs::write(dir.join("report.json"), mop_json::to_string_pretty(&output.json))
            .expect("write report.json");
        eprintln!("wrote {}/report.txt and report.json", dir.display());
    }
}

/// Runs the plan: a plain run, a run-and-save (`--checkpoint`, returns
/// `None` — the report belongs to the resumed run), or a load-and-finish
/// (`--resume`).
fn run_plan(plan: &Plan, options: &Options, windowed: bool) -> Option<FleetReport> {
    let fleet = build_fleet(plan, options, windowed);
    if let Some(path) = &options.resume {
        let text = fs::read_to_string(path).expect("read checkpoint file");
        let checkpoint = FleetCheckpoint::from_json_str(&text).expect("parse checkpoint file");
        eprintln!(
            "resuming {} pending flows from {} (cut at {:?}, saved on {} shards)",
            checkpoint.pending.len(),
            path.display(),
            checkpoint.cut,
            checkpoint.shards_at_save,
        );
        return Some(checkpoint.resume(&fleet));
    }
    if let Some(path) = &options.checkpoint {
        let width = plan.epoch_width().as_nanos();
        let cut_epoch = options.cut_epoch.unwrap_or_else(|| plan.default_cut_epoch());
        let cut = epoch_boundary(width, cut_epoch);
        let checkpoint = FleetCheckpoint::capture(&fleet, plan.generate(), cut);
        let text = checkpoint.to_json_string();
        fs::write(path, &text).expect("write checkpoint file");
        eprintln!(
            "checkpointed {} at epoch {} ({:?}): {} flows ran, {} pending, {} bytes → {}",
            plan.name(),
            cut_epoch,
            cut,
            checkpoint.base.flows.len(),
            checkpoint.pending.len(),
            text.len(),
            path.display(),
        );
        return None;
    }
    if !windowed {
        // The classic lean path, untouched: epoch-less runs keep their
        // historical digests.
        if let Plan::Classic(scenario) = plan {
            return Some(run_scenario_lean(
                scenario,
                options.shards,
                options.seed,
                options.congestion,
            ));
        }
    }
    Some(fleet.run(plan.generate()))
}

fn build_fleet(plan: &Plan, options: &Options, windowed: bool) -> FleetEngine {
    let mut config = FleetConfig::new(options.shards)
        .with_seed(options.seed)
        .with_congestion(options.congestion);
    config.engine = config.engine.with_retain_samples(false);
    if windowed {
        config = config.with_epochs(plan.epoch_width(), 32);
    }
    FleetEngine::new(config, plan.network())
}
