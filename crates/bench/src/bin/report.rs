//! Streaming crowd-analytics report over a fleet scenario.
//!
//! Runs a rush-hour fleet scenario on the sharded relay engine with
//! raw-sample retention **disabled** — every RTT measurement is folded into
//! the shard sinks' mergeable sketches as it is produced, and the crowd
//! report (per-network medians and CDFs, top apps, app-slow-vs-network-slow
//! diagnosis, ISP ranking) is rendered from the merged aggregates. The
//! record vector is never materialised, so analytics memory is
//! O(apps × networks) whatever the connection count.
//!
//! Usage:
//!
//! ```text
//! report                      # 2,000-user rush hour on 4 shards
//! report --users 13000        # ~100k connections
//! report --shards 8 --seed 7  # shard count / seed
//! report --out target/report  # also write report.txt / report.json there
//! ```

use std::fs;
use std::path::PathBuf;

use mop_bench::{render_crowd_report, run_fleet_scenario_lean};

struct Options {
    users: usize,
    shards: usize,
    seed: u64,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut options = Options { users: 2_000, shards: 4, seed: 2017, out_dir: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--users" => {
                options.users = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.users)
            }
            "--shards" => {
                options.shards =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or(options.shards)
            }
            "--seed" => {
                options.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(options.seed)
            }
            "--out" => options.out_dir = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: report [--users <n>] [--shards <n>] [--seed <n>] [--out <dir>]");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let started = std::time::Instant::now();
    let report = run_fleet_scenario_lean(options.users, options.shards, options.seed);
    let ran_in = started.elapsed().as_secs_f64();
    let output = render_crowd_report(&report.merged.aggregates);
    println!("{}", output.text);
    println!(
        "run: {} users, {} shards, seed {}: {} flows, {} samples into {} sketch cells \
         (raw vector: {} entries), digest {:016x}, {ran_in:.1}s wall",
        options.users,
        options.shards,
        options.seed,
        report.merged.flows.len(),
        report.merged.aggregates.sample_count(),
        report.merged.aggregates.cell_count(),
        report.merged.samples.len(),
        report.digest(),
    );
    if let Some(dir) = options.out_dir {
        fs::create_dir_all(&dir).expect("create output directory");
        fs::write(dir.join("report.txt"), &output.text).expect("write report.txt");
        fs::write(dir.join("report.json"), mop_json::to_string_pretty(&output.json))
            .expect("write report.json");
        eprintln!("wrote {}/report.txt and report.json", dir.display());
    }
}
