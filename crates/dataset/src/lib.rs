//! Synthetic crowdsourcing dataset generator.
//!
//! The paper's §4.2 analyses a ten-month Google Play deployment: 5,252,758
//! RTT measurements from 6,266 apps on 2,351 devices in 114 countries. That
//! dataset cannot be re-collected, so this crate generates a synthetic one
//! calibrated to every population statistic the paper reports — the device,
//! app, country and ISP mixes, the per-network-type RTT distributions, and
//! the anomalies behind the two case studies (WhatsApp's SoftLayer domains
//! and Jio's LTE core). The *analysis* pipeline in `mop-analytics` then runs
//! against it unchanged, which is what makes the §4.2 figures reproducible
//! in shape.
//!
//! * [`calibration`] — the constants lifted from the paper,
//! * [`catalog`] — the app, ISP, country and WhatsApp-domain catalogues,
//! * [`generator`] — the generator proper, producing a
//!   [`mop_measure::MeasurementStore`],
//! * [`scenario`] — declarative fleet-scale traffic scenarios (workload
//!   mixes × network profiles) for the sharded relay engine.

pub mod calibration;
pub mod catalog;
pub mod generator;
pub mod scenario;

pub use calibration::Calibration;
pub use catalog::{AppEntry, Catalog, CountryEntry, IspEntry};
pub use generator::{DatasetSpec, SyntheticDataset};
pub use scenario::{DiurnalPhase, DiurnalScenario, NetProfile, Scenario, ScenarioSpec, TrafficMix};
