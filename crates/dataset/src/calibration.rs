//! Constants lifted from the paper's §4.2, used to calibrate the generator
//! and to check the regenerated statistics against the original.

/// Calibration targets from the MopEye deployment (16 May 2016 – 3 Jan 2017).
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Total RTT measurements in the dataset.
    pub total_measurements: u64,
    /// TCP (per-app) measurements.
    pub tcp_measurements: u64,
    /// DNS measurements.
    pub dns_measurements: u64,
    /// Devices that performed at least one measurement.
    pub devices: u32,
    /// Distinct apps measured.
    pub apps: u32,
    /// Distinct user countries.
    pub countries: u32,
    /// Median RTT over all per-app measurements, in ms (Figure 9a).
    pub median_app_rtt_ms: f64,
    /// Median per-app RTT on WiFi, in ms.
    pub median_app_rtt_wifi_ms: f64,
    /// Median per-app RTT on cellular (2G+3G+LTE), in ms.
    pub median_app_rtt_cellular_ms: f64,
    /// Median per-app RTT on LTE alone, in ms.
    pub median_app_rtt_lte_ms: f64,
    /// Median DNS RTT over all measurements, in ms (Figure 10a).
    pub median_dns_rtt_ms: f64,
    /// Median DNS RTT on WiFi, in ms.
    pub median_dns_rtt_wifi_ms: f64,
    /// Median DNS RTT on cellular, in ms.
    pub median_dns_rtt_cellular_ms: f64,
    /// Median DNS RTT on 4G, 3G and 2G, in ms (Figure 10b).
    pub median_dns_rtt_4g_ms: f64,
    /// Median DNS RTT on 3G.
    pub median_dns_rtt_3g_ms: f64,
    /// Median DNS RTT on 2G.
    pub median_dns_rtt_2g_ms: f64,
    /// Fraction of DNS measurements taken on 4G among cellular ones (§4.2.3).
    pub dns_4g_fraction: f64,
    /// Figure 6(a): users per measurement-count bucket
    /// (>10K, 5K–10K, 1K–5K, 100–1K).
    pub users_per_bucket: [u32; 4],
    /// Figure 6(b): apps per measurement-count bucket.
    pub apps_per_bucket: [u32; 4],
    /// Median RTT of the 331 SoftLayer-hosted whatsapp.net domains (Case 1).
    pub whatsapp_softlayer_median_ms: f64,
    /// Median RTT of the three CDN-hosted whatsapp.net domains.
    pub whatsapp_cdn_median_ms: f64,
    /// Jio's median per-app RTT (Case 2).
    pub jio_app_median_ms: f64,
    /// Jio's median DNS RTT.
    pub jio_dns_median_ms: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self::paper()
    }
}

impl Calibration {
    /// The numbers reported in the paper.
    pub fn paper() -> Self {
        Self {
            total_measurements: 5_252_758,
            tcp_measurements: 3_576_931,
            dns_measurements: 1_675_827,
            devices: 2_351,
            apps: 6_266,
            countries: 114,
            median_app_rtt_ms: 65.0,
            median_app_rtt_wifi_ms: 58.0,
            median_app_rtt_cellular_ms: 84.0,
            median_app_rtt_lte_ms: 76.0,
            median_dns_rtt_ms: 42.0,
            median_dns_rtt_wifi_ms: 33.0,
            median_dns_rtt_cellular_ms: 61.0,
            median_dns_rtt_4g_ms: 56.0,
            median_dns_rtt_3g_ms: 105.0,
            median_dns_rtt_2g_ms: 755.0,
            dns_4g_fraction: 0.8,
            users_per_bucket: [104, 70, 288, 575],
            apps_per_bucket: [60, 58, 306, 1125],
            whatsapp_softlayer_median_ms: 261.0,
            whatsapp_cdn_median_ms: 80.0,
            jio_app_median_ms: 281.0,
            jio_dns_median_ms: 59.0,
        }
    }

    /// Fraction of measurements that are TCP (the rest are DNS).
    pub fn tcp_fraction(&self) -> f64 {
        self.tcp_measurements as f64 / self.total_measurements as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_self_consistent() {
        let c = Calibration::paper();
        assert_eq!(c.tcp_measurements + c.dns_measurements, c.total_measurements);
        assert!((c.tcp_fraction() - 0.681).abs() < 0.01);
        assert_eq!(c.users_per_bucket.iter().sum::<u32>(), 1_037);
        assert_eq!(c.apps_per_bucket.iter().sum::<u32>(), 1_549);
        // Network orderings the figures rely on.
        assert!(c.median_app_rtt_wifi_ms < c.median_app_rtt_lte_ms);
        assert!(c.median_app_rtt_lte_ms < c.median_app_rtt_cellular_ms);
        assert!(c.median_dns_rtt_4g_ms < c.median_dns_rtt_3g_ms);
        assert!(c.median_dns_rtt_3g_ms < c.median_dns_rtt_2g_ms);
        assert!(c.jio_app_median_ms > 4.0 * c.jio_dns_median_ms);
        assert_eq!(Calibration::default(), c);
    }
}
