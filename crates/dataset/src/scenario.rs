//! Declarative fleet-scale traffic scenarios.
//!
//! The paper's evaluation drives the relay with one workload at a time on
//! one handset. The fleet engine needs the opposite: *mixes* of app
//! behaviours (web browsing, video streaming, bulk download, DNS-heavy,
//! idle-chatty background apps) crossed with *network profiles* (Wi-Fi, LTE,
//! lossy 3G, mid-session handover), at 100k+ concurrent connections, and all
//! of it reproducible from one seed — the WLCG workload-study lesson that
//! realistic mixed workloads, not single microbenchmarks, expose scaling
//! limits.
//!
//! A [`Scenario`] is pure data: it expands to a network description
//! (a flow-keyed [`SimNetworkBuilder`]) and a flow schedule
//! (`Vec<FlowSpec>`, every flow with a pre-assigned unique source endpoint,
//! so its four-tuple — and therefore its shard, its RNG streams and its
//! whole timeline — is a pure function of the spec). Feed both to a
//! `FleetEngine` and the run is deterministic at any shard count.

use std::net::Ipv4Addr;

use mop_measure::NetKind;
use mop_packet::Endpoint;
use mop_simnet::{AccessProfile, SimDuration, SimNetwork, SimNetworkBuilder, SimRng, SimTime};
use mop_tun::{FlowSpec, Workload, WorkloadKind};

/// Salt for the per-user RNG streams (`seed ^ user * GOLDEN ^ SALT`).
const USER_KEY_SALT: u64 = 0x7573_6572_5f6b_6579; // "user_key"
/// Weyl increment decorrelating consecutive user indices.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
/// First port of each user's per-flow source-port range.
const USER_PORT_BASE: u16 = 30_000;

/// One class of app behaviour in a workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficMix {
    /// Page bursts: a DNS query plus 6–14 short connections per page.
    WebBrowsing,
    /// A manifest fetch plus periodic chunk requests to one host.
    VideoStreaming,
    /// Back-to-back large transfers, speed-test style.
    BulkDownload,
    /// Bursts of DNS queries with no follow-up connections.
    DnsHeavy,
    /// Sparse small exchanges: chat apps and sync agents idling along.
    BackgroundChatter,
}

impl TrafficMix {
    /// Every mix, in presentation order.
    pub const ALL: [TrafficMix; 5] = [
        TrafficMix::WebBrowsing,
        TrafficMix::VideoStreaming,
        TrafficMix::BulkDownload,
        TrafficMix::DnsHeavy,
        TrafficMix::BackgroundChatter,
    ];

    /// A stable kebab-case label (scenario names, benchmark ids).
    pub fn label(self) -> &'static str {
        match self {
            TrafficMix::WebBrowsing => "web-browsing",
            TrafficMix::VideoStreaming => "video-streaming",
            TrafficMix::BulkDownload => "bulk-download",
            TrafficMix::DnsHeavy => "dns-heavy",
            TrafficMix::BackgroundChatter => "background-chatter",
        }
    }

    /// The `mop_tun` workload shape this mix expands to.
    pub fn workload_kind(self) -> WorkloadKind {
        match self {
            TrafficMix::WebBrowsing => WorkloadKind::WebBrowsing,
            TrafficMix::VideoStreaming => WorkloadKind::VideoStreaming,
            TrafficMix::BulkDownload => WorkloadKind::BulkTransfer,
            TrafficMix::DnsHeavy => WorkloadKind::DnsBurst,
            TrafficMix::BackgroundChatter => WorkloadKind::Messaging,
        }
    }

    /// The app generating this traffic: (package, Android-style shared UID).
    pub fn app(self) -> (&'static str, u32) {
        match self {
            TrafficMix::WebBrowsing => ("com.android.chrome", 10_100),
            TrafficMix::VideoStreaming => ("com.google.android.youtube", 10_200),
            TrafficMix::BulkDownload => ("org.zwanoo.android.speedtest", 10_300),
            TrafficMix::DnsHeavy => ("com.whatsapp", 10_400),
            TrafficMix::BackgroundChatter => ("com.google.android.gm", 10_500),
        }
    }

    /// Per-user intensity (pages / transfers / queries / messages), drawn
    /// from the user's stream.
    fn intensity(self, rng: &mut SimRng) -> u32 {
        match self {
            TrafficMix::WebBrowsing => rng.int_inclusive(1, 2) as u32,
            TrafficMix::VideoStreaming => 1,
            TrafficMix::BulkDownload => 1,
            TrafficMix::DnsHeavy => rng.int_inclusive(4, 10) as u32,
            TrafficMix::BackgroundChatter => rng.int_inclusive(2, 6) as u32,
        }
    }
}

/// The access network a scenario's users sit on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetProfile {
    /// Home/office Wi-Fi (25 Mbps, low loss).
    Wifi,
    /// 4G LTE.
    Lte,
    /// Cell-edge 3G: long tail, 3 % loss, sub-megabit uplink.
    Lossy3g,
    /// Starts on Wi-Fi, hands over to LTE halfway through the scenario.
    WifiLteHandover,
    /// Starts on cell-edge 3G (with its data-path faults), hands over to
    /// clean LTE halfway through — the commuter leaving a dead zone. The
    /// profile that exercises loss recovery *and* its mid-session shutdown.
    DegradedCommute,
}

impl NetProfile {
    /// Every profile, in presentation order.
    pub const ALL: [NetProfile; 5] = [
        NetProfile::Wifi,
        NetProfile::Lte,
        NetProfile::Lossy3g,
        NetProfile::WifiLteHandover,
        NetProfile::DegradedCommute,
    ];

    /// A stable kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            NetProfile::Wifi => "wifi",
            NetProfile::Lte => "lte",
            NetProfile::Lossy3g => "lossy-3g",
            NetProfile::WifiLteHandover => "wifi-lte-handover",
            NetProfile::DegradedCommute => "degraded-commute",
        }
    }

    /// Applies the profile (and its impairments) to a network builder.
    /// `handover_at` is when the mid-session handover fires, for the profile
    /// that has one.
    pub fn apply(self, builder: SimNetworkBuilder, handover_at: SimTime) -> SimNetworkBuilder {
        match self {
            NetProfile::Wifi => builder.access(AccessProfile::wifi()),
            NetProfile::Lte => builder.access(AccessProfile::lte()),
            NetProfile::Lossy3g => builder.access(AccessProfile::lossy_3g()),
            NetProfile::WifiLteHandover => builder
                .access(AccessProfile::wifi())
                .handover_at(handover_at, AccessProfile::lte()),
            NetProfile::DegradedCommute => builder
                .access(AccessProfile::lossy_3g())
                .handover_at(handover_at, AccessProfile::lte()),
        }
    }

    /// The measurement-schema network kind a flow starting at `at` is
    /// labelled with (`handover_at` is when the profile's handover fires, if
    /// it has one). This is the label the shard sinks aggregate under.
    pub fn net_kind_at(self, at: SimTime, handover_at: SimTime) -> NetKind {
        match self {
            NetProfile::Wifi => NetKind::Wifi,
            NetProfile::Lte => NetKind::Lte,
            NetProfile::Lossy3g => NetKind::Umts3g,
            NetProfile::WifiLteHandover => {
                if at >= handover_at {
                    NetKind::Lte
                } else {
                    NetKind::Wifi
                }
            }
            NetProfile::DegradedCommute => {
                if at >= handover_at {
                    NetKind::Lte
                } else {
                    NetKind::Umts3g
                }
            }
        }
    }

    /// The operator / Wi-Fi network name flows on this profile are labelled
    /// with — the key the per-ISP analyses group by.
    pub fn isp_label_at(self, at: SimTime, handover_at: SimTime) -> &'static str {
        match self {
            NetProfile::Wifi => "HomeWiFi",
            NetProfile::Lte => "SimTel LTE",
            NetProfile::Lossy3g => "SimTel 3G",
            NetProfile::WifiLteHandover => {
                if at >= handover_at {
                    "SimTel LTE"
                } else {
                    "HomeWiFi"
                }
            }
            NetProfile::DegradedCommute => {
                if at >= handover_at {
                    "SimTel LTE"
                } else {
                    "SimTel 3G"
                }
            }
        }
    }
}

/// The declarative description of one fleet scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (report and benchmark ids).
    pub name: String,
    /// The seed everything derives from.
    pub seed: u64,
    /// Number of simulated users (each with their own handset and source
    /// address).
    pub users: usize,
    /// The window over which each user's flows are scheduled.
    pub duration: SimDuration,
    /// Workload mixes and their relative weights.
    pub mix: Vec<(TrafficMix, f64)>,
    /// The access network everyone is on.
    pub profile: NetProfile,
}

/// A scenario: expands a [`ScenarioSpec`] into a network and a flow
/// schedule. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
}

impl Scenario {
    /// Wraps a spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no users or an empty mix.
    pub fn new(spec: ScenarioSpec) -> Self {
        assert!(spec.users > 0, "a scenario needs at least one user");
        assert!(!spec.mix.is_empty(), "a scenario needs at least one traffic mix");
        Self { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// One single-mix scenario: `mix` on `profile` with `users` users.
    pub fn single(
        mix: TrafficMix,
        profile: NetProfile,
        users: usize,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        Self::new(ScenarioSpec {
            name: format!("{}@{}", mix.label(), profile.label()),
            seed,
            users,
            duration,
            mix: vec![(mix, 1.0)],
            profile,
        })
    }

    /// The full scenario matrix: every workload mix crossed with every
    /// network profile (20 scenarios), `users` users each.
    pub fn matrix(users: usize, duration: SimDuration, seed: u64) -> Vec<Scenario> {
        let mut out = Vec::new();
        for mix in TrafficMix::ALL {
            for profile in NetProfile::ALL {
                out.push(Self::single(mix, profile, users, duration, seed));
            }
        }
        out
    }

    /// The fleet benchmark scenario: a realistic evening mix (mostly
    /// browsing and background chatter, some video, a few bulk downloads and
    /// DNS storms) compressed into a short arrival window, so the aggregate
    /// packet rate is far above what one relay worker can drain — the
    /// workload that exposes the sharding win.
    pub fn rush_hour(users: usize, seed: u64) -> Self {
        Self::new(ScenarioSpec {
            name: "rush-hour".into(),
            seed,
            users,
            duration: SimDuration::from_secs(2),
            mix: vec![
                (TrafficMix::WebBrowsing, 0.30),
                (TrafficMix::BackgroundChatter, 0.40),
                (TrafficMix::VideoStreaming, 0.10),
                (TrafficMix::BulkDownload, 0.05),
                (TrafficMix::DnsHeavy, 0.15),
            ],
            profile: NetProfile::Wifi,
        })
    }

    /// The scheduler-churn scenario: an entire stadium's worth of handsets
    /// opening short-lived connections inside a half-second window — a goal
    /// was scored, everyone's feed refreshes at once. Flows are dominated by
    /// page bursts and DNS storms that open, transfer a little and tear down
    /// immediately, so an engine running per-connection timers arms and
    /// cancels them en masse: the workload that stresses O(1)
    /// schedule/cancel on the timing wheel (`mop_simnet::wheel`) far harder
    /// than rush hour's longer-lived mix.
    pub fn flash_crowd(users: usize, seed: u64) -> Self {
        Self::new(ScenarioSpec {
            name: "flash-crowd".into(),
            seed,
            users,
            duration: SimDuration::from_millis(500),
            mix: vec![
                (TrafficMix::WebBrowsing, 0.55),
                (TrafficMix::DnsHeavy, 0.30),
                (TrafficMix::BackgroundChatter, 0.15),
            ],
            profile: NetProfile::Lte,
        })
    }

    /// The loss-recovery scenario: a commuter's mix of streaming, browsing
    /// and chatter riding cell-edge 3G — 3 % data loss, reordering and the
    /// occasional duplicate — until the handset hands over to clean LTE
    /// halfway through the window. The first half exercises fast retransmit,
    /// SACK recovery and RTO backoff; the second half proves the recovery
    /// machinery goes quiet the moment the network does.
    pub fn degraded_commute(users: usize, seed: u64) -> Self {
        Self::new(ScenarioSpec {
            name: "degraded-commute".into(),
            seed,
            users,
            duration: SimDuration::from_secs(4),
            mix: vec![
                (TrafficMix::VideoStreaming, 0.35),
                (TrafficMix::WebBrowsing, 0.30),
                (TrafficMix::BulkDownload, 0.15),
                (TrafficMix::BackgroundChatter, 0.20),
            ],
            profile: NetProfile::DegradedCommute,
        })
    }

    /// The longitudinal scenario: one simulated day of fleet traffic. See
    /// [`DiurnalScenario`].
    pub fn diurnal(users: usize, seed: u64) -> DiurnalScenario {
        DiurnalScenario::new(users, seed)
    }

    /// The network this scenario runs on: seeded from the spec, flow-keyed,
    /// with the paper's Table 2 destinations and the profile's impairments
    /// (a handover, if the profile has one, fires halfway through the
    /// window).
    pub fn network(&self) -> SimNetworkBuilder {
        let handover_at =
            SimTime::ZERO + SimDuration::from_nanos(self.spec.duration.as_nanos() / 2);
        self.spec
            .profile
            .apply(
                SimNetwork::builder()
                    .seed(self.spec.seed)
                    .flow_keyed()
                    .with_table2_destinations(),
                handover_at,
            )
    }

    /// The destinations scenario workloads spread their connections over
    /// (the Table 2 hosts the scenario network serves).
    pub fn destinations() -> Vec<(Endpoint, String)> {
        vec![
            (Endpoint::v4(216, 58, 221, 132, 443), "www.google.com".to_string()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".to_string()),
            (Endpoint::v4(108, 160, 166, 126, 443), "www.dropbox.com".to_string()),
        ]
    }

    /// The source address of one simulated user's handset (unique per user).
    pub fn user_addr(user: usize) -> Ipv4Addr {
        // Skip the low host numbers so no user collides with the engine's
        // single-device default of 10.0.0.2.
        let host = user as u32 + 0x100;
        Ipv4Addr::new(10, (host >> 16) as u8, (host >> 8) as u8, host as u8)
    }

    /// Expands the scenario into its flow schedule, sorted by start time.
    ///
    /// Deterministic: every user draws from a stream derived from
    /// `(seed, user index)`, and every flow gets a unique pre-assigned
    /// source endpoint (`user_addr(user)` plus a per-flow port), so the
    /// result — and everything a flow-keyed engine does with it — depends
    /// only on the spec.
    ///
    /// Every flow also carries the network/ISP labels of the profile at its
    /// start time ([`NetProfile::net_kind_at`] / [`NetProfile::isp_label_at`]),
    /// which is what the shard sinks aggregate the crowd report under.
    pub fn generate(&self) -> Vec<FlowSpec> {
        let weights: Vec<f64> = self.spec.mix.iter().map(|(_, w)| *w).collect();
        let destinations = Self::destinations();
        let handover_at =
            SimTime::ZERO + SimDuration::from_nanos(self.spec.duration.as_nanos() / 2);
        let mut flows = Vec::new();
        for user in 0..self.spec.users {
            let mut rng = SimRng::seed_from_u64(
                self.spec.seed ^ (user as u64).wrapping_mul(GOLDEN) ^ USER_KEY_SALT,
            );
            let mix_index = rng.weighted_index(&weights).expect("mix weights are positive");
            let mix = self.spec.mix[mix_index].0;
            let (package, uid) = mix.app();
            let workload = Workload::new(
                mix.workload_kind(),
                uid,
                package,
                destinations.clone(),
                self.spec.duration,
                mix.intensity(&mut rng),
            );
            let addr = Self::user_addr(user);
            let mut user_flows = workload.generate(&mut rng);
            for (i, flow) in user_flows.iter_mut().enumerate() {
                flow.src = Some(Endpoint::new(addr, USER_PORT_BASE + i as u16));
                flow.network = Some(self.spec.profile.net_kind_at(flow.at, handover_at));
                flow.isp =
                    Some(self.spec.profile.isp_label_at(flow.at, handover_at).to_string());
            }
            flows.extend(user_flows);
        }
        flows.sort_by_key(|f| (f.at, f.src));
        flows
    }
}

/// One phase of the simulated day: who is online, what they do, and what
/// network they report being on.
#[derive(Debug, Clone)]
pub struct DiurnalPhase {
    /// Phase name ("morning-rush", …).
    pub name: &'static str,
    /// When the phase starts, as an offset into the day.
    pub offset: SimDuration,
    /// How long the phase's arrival window lasts.
    pub duration: SimDuration,
    /// The phase's workload mix.
    pub mix: Vec<(TrafficMix, f64)>,
    /// The access-network kind the phase's flows are labelled with.
    pub network: NetKind,
    /// The operator / Wi-Fi name the phase's flows are labelled with.
    pub isp: &'static str,
    /// The fraction of the fleet active in this phase.
    pub share: f64,
}

/// A simulated day of fleet traffic — the longitudinal scenario behind the
/// windowed epoch sketches and the checkpoint/restore harness.
///
/// The day is compressed to one virtual second per hour (24 virtual seconds
/// end to end) and split into four phases:
///
/// | phase              | hours  | who's on             | dominated by        |
/// |--------------------|--------|----------------------|---------------------|
/// | `morning-rush`     | 0–6    | commuters on LTE     | browsing + DNS      |
/// | `office-wifi`      | 6–12   | desks on office Wi-Fi| chatter + browsing  |
/// | `evening-video`    | 12–18  | homes on Wi-Fi       | video streaming     |
/// | `overnight-chatter`| 18–24  | idle handsets        | background sync     |
///
/// Each phase activates its own slice of the fleet (distinct user indices,
/// so every flow keeps a unique source endpoint) and stamps its flows with
/// the phase's network/ISP labels — which is what the per-epoch sketches
/// and the diagnosis time series group by. The *physical* path is a uniform
/// LTE profile: the simulator supports one mid-run handover, not four, so
/// the day's network character travels on the per-flow labels instead (the
/// dimension the analytics aggregate under), keeping every epoch boundary a
/// legal checkpoint cut.
///
/// Everything derives from `(users, seed)` exactly like [`Scenario`]: per-user
/// RNG streams keyed by the global user index, pre-assigned unique source
/// endpoints, flows sorted by start time. At `users` ≈ 250,000 the schedule
/// crosses a million device-flows; the tests and benchmarks run scaled-down
/// fleets with the identical shape.
#[derive(Debug, Clone)]
pub struct DiurnalScenario {
    seed: u64,
    users: usize,
    phases: Vec<DiurnalPhase>,
}

impl DiurnalScenario {
    /// A simulated day over a fleet of `users` handsets.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero.
    pub fn new(users: usize, seed: u64) -> Self {
        assert!(users > 0, "a diurnal scenario needs at least one user");
        let hour = Self::virtual_hour();
        let quarter = SimDuration::from_nanos(hour.as_nanos() * 6);
        let phases = vec![
            DiurnalPhase {
                name: "morning-rush",
                offset: SimDuration::from_nanos(0),
                duration: quarter,
                mix: vec![
                    (TrafficMix::WebBrowsing, 0.40),
                    (TrafficMix::BackgroundChatter, 0.25),
                    (TrafficMix::DnsHeavy, 0.25),
                    (TrafficMix::VideoStreaming, 0.10),
                ],
                network: NetKind::Lte,
                isp: "SimTel LTE",
                share: 0.30,
            },
            DiurnalPhase {
                name: "office-wifi",
                offset: quarter,
                duration: quarter,
                mix: vec![
                    (TrafficMix::BackgroundChatter, 0.45),
                    (TrafficMix::WebBrowsing, 0.35),
                    (TrafficMix::BulkDownload, 0.10),
                    (TrafficMix::DnsHeavy, 0.10),
                ],
                network: NetKind::Wifi,
                isp: "OfficeWiFi",
                share: 0.25,
            },
            DiurnalPhase {
                name: "evening-video",
                offset: SimDuration::from_nanos(quarter.as_nanos() * 2),
                duration: quarter,
                mix: vec![
                    (TrafficMix::VideoStreaming, 0.50),
                    (TrafficMix::WebBrowsing, 0.25),
                    (TrafficMix::BackgroundChatter, 0.15),
                    (TrafficMix::BulkDownload, 0.10),
                ],
                network: NetKind::Wifi,
                isp: "HomeWiFi",
                share: 0.35,
            },
            DiurnalPhase {
                name: "overnight-chatter",
                offset: SimDuration::from_nanos(quarter.as_nanos() * 3),
                duration: quarter,
                mix: vec![
                    (TrafficMix::BackgroundChatter, 0.80),
                    (TrafficMix::DnsHeavy, 0.20),
                ],
                network: NetKind::Wifi,
                isp: "HomeWiFi",
                share: 0.10,
            },
        ];
        Self { seed, users, phases }
    }

    /// The scenario name (report and benchmark ids).
    pub fn name(&self) -> &'static str {
        "diurnal"
    }

    /// The seed everything derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fleet size the day is scaled to.
    pub fn users(&self) -> usize {
        self.users
    }

    /// One virtual hour: the natural epoch width for this scenario (24
    /// epochs cover the day, and every hour boundary is a checkpoint cut).
    pub fn virtual_hour() -> SimDuration {
        SimDuration::from_secs(1)
    }

    /// The whole virtual day (24 virtual hours).
    pub fn day() -> SimDuration {
        SimDuration::from_nanos(Self::virtual_hour().as_nanos() * 24)
    }

    /// The day's phases, in order.
    pub fn phases(&self) -> &[DiurnalPhase] {
        &self.phases
    }

    /// The network the day runs on: seeded, flow-keyed, Table 2
    /// destinations, uniform LTE path (see the type docs for why the
    /// per-phase network character is label-carried instead).
    pub fn network(&self) -> SimNetworkBuilder {
        SimNetwork::builder()
            .seed(self.seed)
            .flow_keyed()
            .with_table2_destinations()
            .access(AccessProfile::lte())
    }

    /// How many of the fleet's users are active in phase `index`.
    fn phase_users(&self, index: usize) -> usize {
        let share = self.phases[index].share;
        ((self.users as f64 * share).round() as usize).max(1)
    }

    /// Expands the day into its flow schedule, sorted by start time.
    ///
    /// Phase `p`'s users occupy a distinct global-index range (offset by the
    /// preceding phases' populations), so every flow keeps a unique source
    /// address; each user's stream is keyed by `(seed, global index)` exactly
    /// like [`Scenario::generate`], and the phase offset shifts the whole
    /// arrival window into its hours of the day.
    pub fn generate(&self) -> Vec<FlowSpec> {
        let destinations = Scenario::destinations();
        let mut flows = Vec::new();
        let mut user_base = 0usize;
        for (index, phase) in self.phases.iter().enumerate() {
            let weights: Vec<f64> = phase.mix.iter().map(|(_, w)| *w).collect();
            let phase_users = self.phase_users(index);
            for user in 0..phase_users {
                let global_user = user_base + user;
                let mut rng = SimRng::seed_from_u64(
                    self.seed ^ (global_user as u64).wrapping_mul(GOLDEN) ^ USER_KEY_SALT,
                );
                let mix_index = rng.weighted_index(&weights).expect("mix weights are positive");
                let mix = phase.mix[mix_index].0;
                let (package, uid) = mix.app();
                let workload = Workload::new(
                    mix.workload_kind(),
                    uid,
                    package,
                    destinations.clone(),
                    phase.duration,
                    mix.intensity(&mut rng),
                );
                let addr = Scenario::user_addr(global_user);
                let mut user_flows = workload.generate(&mut rng);
                for (i, flow) in user_flows.iter_mut().enumerate() {
                    flow.at += phase.offset;
                    flow.src = Some(Endpoint::new(addr, USER_PORT_BASE + i as u16));
                    flow.network = Some(phase.network);
                    flow.isp = Some(phase.isp.to_string());
                }
                flows.extend(user_flows);
            }
            user_base += phase_users;
        }
        flows.sort_by_key(|f| (f.at, f.src));
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic_and_sources_are_unique() {
        let scenario = Scenario::rush_hour(400, 7);
        let a = scenario.generate();
        let b = scenario.generate();
        assert_eq!(a, b, "same spec, same schedule");
        let sources: HashSet<_> = a.iter().map(|f| f.src.expect("pre-assigned src")).collect();
        assert_eq!(sources.len(), a.len(), "every flow has a unique source endpoint");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by start time");
        assert!(a.len() >= 400, "at least one flow per user, got {}", a.len());
    }

    #[test]
    fn flash_crowd_is_a_compressed_churny_burst() {
        let scenario = Scenario::flash_crowd(300, 5);
        let flows = scenario.generate();
        assert_eq!(flows, Scenario::flash_crowd(300, 5).generate(), "deterministic");
        assert!(flows.len() >= 300, "at least one flow per user, got {}", flows.len());
        // Arrivals are compressed: the page bursts trail a little past the
        // half-second window, but everything lands within ~1.5 s.
        let horizon = SimTime::ZERO + SimDuration::from_millis(1_500);
        assert!(flows.iter().all(|f| f.at <= horizon));
        let sources: HashSet<_> = flows.iter().map(|f| f.src.expect("pre-assigned src")).collect();
        assert_eq!(sources.len(), flows.len(), "unique source endpoints");
        // The mix is dominated by the short-lived browsing + DNS churn.
        let churny = flows
            .iter()
            .filter(|f| {
                f.package == "com.android.chrome" || f.package == "com.whatsapp"
            })
            .count();
        assert!(churny * 2 > flows.len(), "churny flows {} of {}", churny, flows.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::rush_hour(50, 1).generate();
        let b = Scenario::rush_hour(50, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn matrix_crosses_every_mix_with_every_profile() {
        let matrix = Scenario::matrix(10, SimDuration::from_secs(5), 3);
        assert_eq!(matrix.len(), TrafficMix::ALL.len() * NetProfile::ALL.len());
        let names: HashSet<_> = matrix.iter().map(|s| s.spec().name.clone()).collect();
        assert_eq!(names.len(), matrix.len(), "scenario names are unique");
        assert!(names.contains("bulk-download@lossy-3g"));
        assert!(names.contains("web-browsing@wifi-lte-handover"));
        for scenario in &matrix {
            assert!(!scenario.generate().is_empty());
        }
    }

    #[test]
    fn mix_weights_shape_the_population() {
        let flows = Scenario::rush_hour(2000, 11).generate();
        let chatter = flows.iter().filter(|f| f.package == "com.google.android.gm").count();
        let bulk =
            flows.iter().filter(|f| f.package == "org.zwanoo.android.speedtest").count();
        assert!(chatter > bulk, "chatter (40%) should outnumber bulk (5%)");
    }

    #[test]
    fn handover_profile_builds_a_network_with_midpoint_switch() {
        let scenario = Scenario::single(
            TrafficMix::WebBrowsing,
            NetProfile::WifiLteHandover,
            5,
            SimDuration::from_secs(10),
            1,
        );
        let net = scenario.network().build();
        use mop_simnet::NetworkType;
        assert_eq!(net.access_at(SimTime::from_secs(1)).network_type, NetworkType::Wifi);
        assert_eq!(net.access_at(SimTime::from_secs(6)).network_type, NetworkType::Lte);
    }

    #[test]
    fn degraded_commute_starts_faulty_and_hands_over_clean() {
        let scenario = Scenario::degraded_commute(20, 9);
        let flows = scenario.generate();
        assert_eq!(flows, Scenario::degraded_commute(20, 9).generate(), "deterministic");
        let net = scenario.network().build();
        // Faults are live on the 3G half and gone after the LTE handover.
        assert!(net.access_at(SimTime::from_secs(1)).has_data_faults());
        assert!(!net.access_at(SimTime::from_secs(3)).has_data_faults());
        // Flow labels follow the handover.
        let handover = SimTime::ZERO + SimDuration::from_secs(2);
        for flow in &flows {
            let expect = if flow.at >= handover { "SimTel LTE" } else { "SimTel 3G" };
            assert_eq!(flow.isp.as_deref(), Some(expect));
        }
    }

    #[test]
    fn diurnal_day_is_deterministic_with_unique_sources() {
        let day = Scenario::diurnal(200, 13);
        let a = day.generate();
        let b = Scenario::diurnal(200, 13).generate();
        assert_eq!(a, b, "same (users, seed), same day");
        assert_ne!(a, Scenario::diurnal(200, 14).generate(), "seeds differ");
        let sources: HashSet<_> = a.iter().map(|f| f.src.expect("pre-assigned src")).collect();
        assert_eq!(sources.len(), a.len(), "unique source endpoints across phases");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by start time");
        // The fleet produces several flows per active user — the ratio that
        // makes the full-scale day (users ≈ 250k) cross a million flows.
        assert!(a.len() >= 200 * 2, "flows per fleet too low: {}", a.len());
    }

    #[test]
    fn diurnal_phases_cover_the_day_and_label_their_flows() {
        let day = Scenario::diurnal(400, 21);
        let hour = DiurnalScenario::virtual_hour();
        assert_eq!(DiurnalScenario::day().as_nanos(), hour.as_nanos() * 24);
        let phases = day.phases();
        assert_eq!(phases.len(), 4);
        assert!((phases.iter().map(|p| p.share).sum::<f64>() - 1.0).abs() < 1e-9);

        let flows = day.generate();
        for phase in phases {
            let start = SimTime::ZERO + phase.offset;
            let in_phase: Vec<_> =
                flows.iter().filter(|f| f.isp.as_deref() == Some(phase.isp)).collect();
            // The evening and overnight phases share the HomeWiFi label, so
            // per-phase attribution by ISP is existence, not exclusivity.
            assert!(
                in_phase.iter().any(|f| f.at >= start),
                "phase {} contributed no flows in its own hours",
                phase.name
            );
        }
        // Morning flows are LTE-labelled; evening is video-heavy Wi-Fi.
        let morning = flows.iter().filter(|f| f.network == Some(NetKind::Lte)).count();
        assert!(morning > 0, "morning LTE flows missing");
        let video = flows
            .iter()
            .filter(|f| f.package == "com.google.android.youtube")
            .filter(|f| f.at >= SimTime::ZERO + SimDuration::from_nanos(hour.as_nanos() * 12))
            .count();
        assert!(video > 0, "evening video peak missing");
    }

    #[test]
    fn user_addresses_avoid_the_single_device_ip() {
        for user in 0..1000 {
            assert_ne!(Scenario::user_addr(user), Ipv4Addr::new(10, 0, 0, 2));
        }
        assert_ne!(Scenario::user_addr(0), Scenario::user_addr(65_536));
    }
}
