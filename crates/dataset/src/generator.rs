//! The synthetic dataset generator.
//!
//! The generator builds a device population (countries, ISPs, network mixes,
//! activity levels) and then emits per-app TCP and DNS measurements whose
//! distributions are calibrated to the paper's reported statistics. The
//! `scale` knob shrinks the dataset uniformly (every device keeps its
//! relative activity) so tests and benches can run on a laptop; analyses
//! that use absolute count thresholds scale them by the same factor.

use mop_measure::{AggregateStore, MeasurementStore, NetKind, RttRecord};
use mop_simnet::SimRng;

use crate::calibration::Calibration;
use crate::catalog::Catalog;

/// Parameters of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Deterministic seed.
    pub seed: u64,
    /// Fraction of the full 5.25 M-measurement deployment to generate.
    pub scale: f64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self { seed: 20160516, scale: 0.02 }
    }
}

impl DatasetSpec {
    /// A small spec for unit tests (about 10k records).
    pub fn quick() -> Self {
        Self { seed: 7, scale: 0.002 }
    }

    /// A spec with an explicit scale.
    pub fn with_scale(scale: f64) -> Self {
        Self { scale, ..Self::default() }
    }

    /// Scales an absolute count threshold from the paper (e.g. "domains with
    /// 100+ measurements") to this dataset's size.
    pub fn scaled_threshold(&self, paper_threshold: u64) -> u64 {
        ((paper_threshold as f64 * self.scale).round() as u64).max(2)
    }
}

/// A device in the synthetic population.
#[derive(Debug, Clone)]
struct Device {
    id: u32,
    country: String,
    isp: String,
    isp_index: Option<usize>,
    wifi_fraction: f64,
    /// Distribution over cellular generations (LTE, 3G, 2G).
    cellular_mix: [f64; 3],
    measurements: u64,
    /// Latitude/longitude, jittered around the country centroid (Figure 8).
    lat_lon: (f64, f64),
}

/// The generated dataset plus everything needed to interpret it.
#[derive(Debug)]
pub struct SyntheticDataset {
    /// Generation parameters.
    pub spec: DatasetSpec,
    /// The measurement records.
    pub store: MeasurementStore,
    /// The streaming aggregation of the same records: per-(app, kind,
    /// network, ISP) sketches plus the device plane. The §4.2 analyses in
    /// `mop_analytics` compute from this, so their cost and memory are
    /// independent of the record count.
    pub aggregates: AggregateStore,
    /// The catalogue used.
    pub catalog: Catalog,
    /// The paper constants used for calibration.
    pub calibration: Calibration,
    /// Geographic measurement locations (Figure 8): one entry per device.
    pub locations: Vec<(f64, f64)>,
}

impl SyntheticDataset {
    /// Generates a dataset.
    pub fn generate(spec: DatasetSpec) -> Self {
        let catalog = Catalog::paper();
        let calibration = Calibration::paper();
        let mut rng = SimRng::seed_from_u64(spec.seed);
        let devices = build_devices(&catalog, &calibration, spec.scale, &mut rng);
        let locations = devices.iter().map(|d| d.lat_lon).collect();
        let mut store = MeasurementStore::new();
        for device in &devices {
            emit_device(device, &catalog, &calibration, &mut rng, &mut store);
        }
        // Fold the same records into the streaming aggregates (a deployment
        // sink would do this instead of retaining the records at all).
        let mut aggregates = AggregateStore::new();
        for record in store.records() {
            aggregates.observe(record);
        }
        Self { spec, store, aggregates, catalog, calibration, locations }
    }
}

fn build_devices(
    catalog: &Catalog,
    calibration: &Calibration,
    scale: f64,
    rng: &mut SimRng,
) -> Vec<Device> {
    let total_devices = calibration.devices;
    // Country assignment: the top-20 countries hold their Figure 7 user
    // counts; the remainder spread over a long tail of other countries.
    let top20_users: u32 = catalog.top20_users();
    let mut devices = Vec::with_capacity(total_devices as usize);
    for id in 0..total_devices {
        let (country, lat_lon) = pick_country(catalog, top20_users, total_devices, rng);
        let (isp, isp_index) = pick_isp(catalog, &country, rng);
        // Activity bucket, matching Figure 6(a): (>10K, 5–10K, 1–5K, 100–1K, <100).
        let bucket_weights = [
            f64::from(calibration.users_per_bucket[0]),
            f64::from(calibration.users_per_bucket[1]),
            f64::from(calibration.users_per_bucket[2]),
            f64::from(calibration.users_per_bucket[3]),
            f64::from(total_devices - calibration.users_per_bucket.iter().sum::<u32>()),
        ];
        let bucket = rng.weighted_index(&bucket_weights).unwrap_or(4);
        let full_count = match bucket {
            0 => rng.int_inclusive(10_001, 40_000),
            1 => rng.int_inclusive(5_001, 10_000),
            2 => rng.int_inclusive(1_001, 5_000),
            3 => rng.int_inclusive(100, 1_000),
            _ => rng.int_inclusive(1, 99),
        };
        let mut measurements = ((full_count as f64) * scale).round().max(1.0) as u64;
        // Table 6's measurement counts are wildly out of proportion to user
        // counts: 13 Singapore users contributed 34,609 DNS measurements.
        // Devices on the catalogued operators are boosted so that per-ISP
        // volumes keep the paper's ordering even at small scales.
        if let Some(idx) = isp_index {
            let isp_entry = &catalog.isps[idx];
            let users_in_country = catalog
                .countries
                .iter()
                .find(|c| c.name == isp_entry.country)
                .map(|c| f64::from(c.users))
                .unwrap_or(25.0);
            let boost = (isp_entry.weight / users_in_country / 150.0).clamp(1.0, 30.0);
            measurements = ((measurements as f64) * boost).round() as u64;
        }
        let lte_share = 0.82;
        devices.push(Device {
            id,
            country,
            isp,
            isp_index,
            wifi_fraction: rng.uniform(0.35, 0.85),
            cellular_mix: [lte_share, 0.13, 1.0 - lte_share - 0.13],
            measurements,
            lat_lon: (lat_lon.0 + rng.uniform(-4.0, 4.0), lat_lon.1 + rng.uniform(-6.0, 6.0)),
        });
    }
    devices
}

fn pick_country(
    catalog: &Catalog,
    top20_users: u32,
    total_devices: u32,
    rng: &mut SimRng,
) -> (String, (f64, f64)) {
    let long_tail_users = total_devices.saturating_sub(top20_users);
    let mut weights: Vec<f64> = catalog.countries.iter().map(|c| f64::from(c.users)).collect();
    weights.push(f64::from(long_tail_users));
    match rng.weighted_index(&weights) {
        Some(i) if i < catalog.countries.len() => {
            let c = &catalog.countries[i];
            (c.name.clone(), c.lat_lon)
        }
        _ => {
            // One of the 94 other countries.
            let n = rng.int_inclusive(1, 94);
            (format!("Country-{n:02}"), (rng.uniform(-40.0, 60.0), rng.uniform(-120.0, 150.0)))
        }
    }
}

fn pick_isp(catalog: &Catalog, country: &str, rng: &mut SimRng) -> (String, Option<usize>) {
    let candidates: Vec<(usize, f64)> = catalog
        .isps
        .iter()
        .enumerate()
        .filter(|(_, isp)| isp.country == country)
        .map(|(i, isp)| (i, isp.weight))
        .collect();
    if candidates.is_empty() || rng.chance(0.15) {
        return (format!("{country} Mobile"), None);
    }
    let weights: Vec<f64> = candidates.iter().map(|(_, w)| *w).collect();
    let pick = rng.weighted_index(&weights).unwrap_or(0);
    let (idx, _) = candidates[pick];
    (catalog.isps[idx].name.clone(), Some(idx))
}

fn emit_device(
    device: &Device,
    catalog: &Catalog,
    calibration: &Calibration,
    rng: &mut SimRng,
    store: &mut MeasurementStore,
) {
    let tcp_fraction = calibration.tcp_fraction();
    for _ in 0..device.measurements {
        let timestamp = rng.int_inclusive(0, 232 * 86_400);
        let network = sample_network(device, rng);
        if rng.chance(tcp_fraction) {
            store.push(tcp_record(device, catalog, network, timestamp, rng));
        } else {
            store.push(dns_record(device, catalog, network, timestamp, rng));
        }
    }
}

fn sample_network(device: &Device, rng: &mut SimRng) -> NetKind {
    if rng.chance(device.wifi_fraction) {
        return NetKind::Wifi;
    }
    match rng.weighted_index(&device.cellular_mix) {
        Some(1) => NetKind::Umts3g,
        Some(2) => NetKind::Gprs2g,
        _ => NetKind::Lte,
    }
}

fn network_multiplier(network: NetKind) -> f64 {
    match network {
        NetKind::Wifi => 0.85,
        NetKind::Lte => 1.05,
        NetKind::Umts3g => 2.3,
        NetKind::Gprs2g => 9.0,
    }
}

/// A deterministic pseudo-random median for a long-tail app, so that the same
/// app id always behaves the same way across devices.
fn long_tail_median(app_index: u64) -> f64 {
    let mut h = app_index.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    h ^= h >> 33;
    let unit = (h % 10_000) as f64 / 10_000.0;
    // Log-uniform between ~25 ms and ~400 ms, weighted towards the low end,
    // reproducing the ~10 % of apps above 200 ms in Figure 9(b).
    25.0 * (16.0f64).powf(unit.powf(1.7))
}

fn tcp_record(
    device: &Device,
    catalog: &Catalog,
    network: NetKind,
    timestamp: u64,
    rng: &mut SimRng,
) -> RttRecord {
    // 55 % of per-app traffic goes to the 16 representative apps.
    let (package, domain, base_median) = if rng.chance(0.55) {
        let weights: Vec<f64> = catalog.apps.iter().map(|a| a.weight).collect();
        let idx = rng.weighted_index(&weights).unwrap_or(0);
        let app = &catalog.apps[idx];
        if app.package == "com.whatsapp" {
            // Case 1: most whatsapp.net domains sit on SoftLayer and are slow;
            // the three CDN-hosted ones are fast.
            if rng.chance(0.55) {
                let i = rng.int_inclusive(0, catalog.whatsapp_softlayer_domains.len() as u64 - 1);
                (
                    app.package.clone(),
                    catalog.whatsapp_softlayer_domains[i as usize].clone(),
                    260.0,
                )
            } else {
                let i = rng.int_inclusive(0, catalog.whatsapp_cdn_domains.len() as u64 - 1);
                (app.package.clone(), catalog.whatsapp_cdn_domains[i as usize].clone(), 70.0)
            }
        } else {
            (app.package.clone(), app.domain.clone(), app.median_rtt_ms)
        }
    } else {
        let app_index = rng.int_inclusive(1, u64::from(catalog.long_tail_apps));
        (
            format!("app.longtail.a{app_index:04}"),
            format!("api.longtail{app_index:04}.com"),
            long_tail_median(app_index),
        )
    };
    // Case 2: Jio's LTE core adds a large penalty to app traffic but not DNS.
    let isp_extra = match (network.is_cellular(), device.isp_index) {
        (true, Some(idx)) => catalog.isps[idx].core_extra_ms,
        _ => 0.0,
    };
    let median = base_median * network_multiplier(network) + isp_extra;
    let rtt = rng.lognormal_median(median, 0.55).max(2.0);
    let isp = record_isp(device, network);
    RttRecord::tcp(rtt, device.id, &package, network)
        .with_domain(&domain)
        .with_isp(&isp)
        .with_country(&device.country)
        .with_dst(&pseudo_ip(&domain), 443)
        .with_timestamp(timestamp)
}

fn dns_record(
    device: &Device,
    catalog: &Catalog,
    network: NetKind,
    timestamp: u64,
    rng: &mut SimRng,
) -> RttRecord {
    let rtt = match network {
        NetKind::Wifi => rng.lognormal_median(31.0, 0.55) + 2.0,
        NetKind::Umts3g => rng.lognormal_median(95.0, 0.5) + 10.0,
        NetKind::Gprs2g => rng.lognormal_median(700.0, 0.45) + 55.0,
        NetKind::Lte => match device.isp_index {
            Some(idx) => {
                let isp = &catalog.isps[idx];
                if rng.chance(isp.non_lte_fraction) {
                    // Devices of this operator still attaching over pre-4G
                    // radios (the Cricket / U.S. Cellular signature).
                    isp.dns_floor_ms + rng.lognormal_median(90.0, 0.5)
                } else if isp.dns_floor_ms < 5.0 && rng.chance(0.16) {
                    // Operators with a countrywide latest-generation LTE
                    // deployment (Singtel's Tri-band 4G+) serve a visible
                    // fraction of resolutions below 10 ms (Figure 11).
                    isp.dns_floor_ms + rng.uniform(1.0, 6.0)
                } else {
                    isp.dns_floor_ms + rng.lognormal_median((isp.dns_median_ms - isp.dns_floor_ms).max(5.0), 0.5)
                }
            }
            None => rng.lognormal_median(52.0, 0.5) + 8.0,
        },
    };
    let isp = record_isp(device, network);
    RttRecord::dns(rtt.max(1.0), device.id, network)
        .with_isp(&isp)
        .with_country(&device.country)
        .with_dst("192.168.1.1", 53)
        .with_timestamp(timestamp)
}

fn record_isp(device: &Device, network: NetKind) -> String {
    if network.is_cellular() {
        device.isp.clone()
    } else {
        format!("WiFi-{}", device.country)
    }
}

fn pseudo_ip(domain: &str) -> String {
    let h: u32 = domain.bytes().fold(0x811c_9dc5u32, |acc, b| (acc ^ u32::from(b)).wrapping_mul(0x0100_0193));
    format!("{}.{}.{}.{}", 20 + (h >> 24) % 200, (h >> 16) & 0xff, (h >> 8) & 0xff, h & 0xff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_measure::MeasurementKind;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::quick())
    }

    #[test]
    fn sizes_scale_with_the_spec() {
        let d = dataset();
        let expected = 5_252_758.0 * d.spec.scale;
        let actual = d.store.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.35,
            "expected ~{expected} records, got {actual}"
        );
        let tcp = d.store.of_kind(MeasurementKind::Tcp).len() as f64;
        assert!((tcp / actual - 0.681).abs() < 0.05, "tcp fraction {}", tcp / actual);
        assert_eq!(d.locations.len(), 2_351);
    }

    #[test]
    fn network_type_medians_have_the_paper_ordering() {
        let d = dataset();
        let median = |net: NetKind, kind: MeasurementKind| {
            d.store
                .median_where(|r| r.network == net && r.kind == kind)
                .unwrap_or(f64::NAN)
        };
        let wifi = median(NetKind::Wifi, MeasurementKind::Tcp);
        let lte = median(NetKind::Lte, MeasurementKind::Tcp);
        let g3 = median(NetKind::Umts3g, MeasurementKind::Tcp);
        assert!(wifi < lte && lte < g3, "wifi {wifi} lte {lte} 3g {g3}");
        let dns_wifi = median(NetKind::Wifi, MeasurementKind::Dns);
        let dns_lte = median(NetKind::Lte, MeasurementKind::Dns);
        let dns_3g = median(NetKind::Umts3g, MeasurementKind::Dns);
        let dns_2g = median(NetKind::Gprs2g, MeasurementKind::Dns);
        assert!(dns_wifi < dns_lte && dns_lte < dns_3g && dns_3g < dns_2g);
        // Overall app RTT median lands in the paper's 50–90 ms region.
        let overall = d.store.median_where(|r| r.kind == MeasurementKind::Tcp).unwrap();
        assert!((40.0..110.0).contains(&overall), "overall median {overall}");
        // DNS is clearly faster than app RTTs overall (§4.2.3).
        let dns_overall = d.store.median_where(|r| r.kind == MeasurementKind::Dns).unwrap();
        assert!(dns_overall < overall);
    }

    #[test]
    fn representative_apps_are_present_with_sane_medians() {
        let d = dataset();
        let youtube = d.store.median_where(|r| r.app == "com.google.android.youtube").unwrap();
        let whatsapp = d.store.median_where(|r| r.app == "com.whatsapp").unwrap();
        assert!(youtube < 80.0, "youtube median {youtube}");
        assert!(whatsapp > 90.0, "whatsapp median {whatsapp}");
        assert!(whatsapp > youtube * 2.0);
        // The long tail exists too.
        let apps = d.store.counts_per_app();
        assert!(apps.keys().any(|a| a.starts_with("app.longtail.")));
        assert!(apps.len() > 300, "distinct apps {}", apps.len());
    }

    #[test]
    fn whatsapp_softlayer_domains_are_much_slower_than_cdn_ones() {
        let d = SyntheticDataset::generate(DatasetSpec { seed: 3, scale: 0.004 });
        let softlayer = d
            .store
            .median_where(|r| r.domain.ends_with("whatsapp.net") && !r.domain.starts_with("mm") && !r.domain.starts_with("pps"))
            .unwrap();
        let cdn = d
            .store
            .median_where(|r| {
                r.domain.starts_with("mme.") || r.domain.starts_with("mmg.") || r.domain.starts_with("pps.")
            })
            .unwrap();
        assert!(softlayer > 190.0, "softlayer median {softlayer}");
        assert!(cdn < 110.0, "cdn median {cdn}");
    }

    #[test]
    fn jio_penalises_apps_but_not_dns() {
        let d = SyntheticDataset::generate(DatasetSpec { seed: 11, scale: 0.004 });
        let jio_app = d
            .store
            .median_where(|r| r.isp == "Jio 4G" && r.kind == MeasurementKind::Tcp)
            .unwrap();
        let jio_dns = d
            .store
            .median_where(|r| r.isp == "Jio 4G" && r.kind == MeasurementKind::Dns)
            .unwrap();
        let verizon_app = d
            .store
            .median_where(|r| r.isp == "Verizon" && r.kind == MeasurementKind::Tcp)
            .unwrap();
        assert!(jio_app > 180.0, "jio app median {jio_app}");
        assert!(jio_dns < 100.0, "jio dns median {jio_dns}");
        assert!(jio_app > verizon_app * 2.0, "jio {jio_app} vs verizon {verizon_app}");
    }

    #[test]
    fn country_distribution_follows_figure7() {
        let d = dataset();
        let by_country = d.store.devices_per_country();
        let usa = by_country.get("USA").copied().unwrap_or(0);
        let uk = by_country.get("UK").copied().unwrap_or(0);
        let india = by_country.get("India").copied().unwrap_or(0);
        assert!(usa > uk * 3, "usa {usa} uk {uk}");
        assert!(usa > india * 3, "usa {usa} india {india}");
        // Long-tail countries exist.
        assert!(by_country.keys().any(|c| c.starts_with("Country-")));
    }

    #[test]
    fn determinism_same_seed_same_dataset() {
        let a = SyntheticDataset::generate(DatasetSpec { seed: 5, scale: 0.001 });
        let b = SyntheticDataset::generate(DatasetSpec { seed: 5, scale: 0.001 });
        assert_eq!(a.store.len(), b.store.len());
        assert_eq!(a.store.records()[0], b.store.records()[0]);
        assert_eq!(a.store.records().last(), b.store.records().last());
        let c = SyntheticDataset::generate(DatasetSpec { seed: 6, scale: 0.001 });
        assert_ne!(a.store.records()[0], c.store.records()[0]);
    }

    #[test]
    fn scaled_threshold_helper() {
        let spec = DatasetSpec::with_scale(0.02);
        assert_eq!(spec.scaled_threshold(100), 2);
        assert_eq!(spec.scaled_threshold(1000), 20);
        assert_eq!(DatasetSpec::quick().scaled_threshold(100), 2);
    }
}
