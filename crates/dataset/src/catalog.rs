//! Catalogues of the apps, ISPs, countries and domains the analysis slices
//! the dataset by.

/// One well-known app, with its Table 5 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AppEntry {
    /// Package name.
    pub package: String,
    /// The paper's category label.
    pub category: &'static str,
    /// Share of TCP measurements attributed to this app (relative weight).
    pub weight: f64,
    /// Median RTT reported in Table 5, in ms.
    pub median_rtt_ms: f64,
    /// Primary server domain.
    pub domain: String,
}

/// One LTE operator, with its Table 6 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IspEntry {
    /// Operator name as in Table 6.
    pub name: String,
    /// Country.
    pub country: String,
    /// Relative share of cellular DNS measurements (from the `# RTT` column).
    pub weight: f64,
    /// Median DNS RTT reported in Table 6, in ms.
    pub dns_median_ms: f64,
    /// Extra latency the operator's core adds to app traffic (the Jio
    /// signature; zero for everyone else).
    pub core_extra_ms: f64,
    /// Fraction of this operator's devices still attaching over pre-4G
    /// radios (drives the Figure 11 mixtures for Cricket / U.S. Cellular).
    pub non_lte_fraction: f64,
    /// Minimum achievable DNS RTT (the ~43 ms floor of Cricket / U.S.
    /// Cellular vs the sub-10 ms Singtel can reach).
    pub dns_floor_ms: f64,
}

/// One country with its Figure 7 user count.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryEntry {
    /// Country name as in Figure 7.
    pub name: String,
    /// Number of MopEye users in that country.
    pub users: u32,
    /// Representative latitude/longitude for the Figure 8 scatter.
    pub lat_lon: (f64, f64),
}

/// The full catalogue.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// The 16 representative apps of Table 5.
    pub apps: Vec<AppEntry>,
    /// The 15 LTE operators of Table 6.
    pub isps: Vec<IspEntry>,
    /// The top-20 countries of Figure 7.
    pub countries: Vec<CountryEntry>,
    /// The number of long-tail apps beyond the representative ones.
    pub long_tail_apps: u32,
    /// whatsapp.net domains hosted on SoftLayer (slow, Case 1).
    pub whatsapp_softlayer_domains: Vec<String>,
    /// whatsapp.net domains hosted on the Facebook CDN (fast, Case 1).
    pub whatsapp_cdn_domains: Vec<String>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::paper()
    }
}

impl Catalog {
    /// Builds the catalogue with the paper's numbers.
    pub fn paper() -> Self {
        let apps = vec![
            app("com.facebook.katana", "Social", 215_769.0, 61.0, "graph.facebook.com"),
            app("com.instagram.android", "Social", 38_640.0, 50.5, "i.instagram.com"),
            app("com.sina.weibo", "Social", 28_905.0, 43.0, "api.weibo.cn"),
            app("com.twitter.android", "Social", 11_407.0, 56.0, "api.twitter.com"),
            app("com.tencent.mm", "Social", 61_804.0, 36.0, "long.weixin.qq.com"),
            app("com.facebook.orca", "Communication", 42_408.0, 42.0, "edge-chat.facebook.com"),
            app("com.whatsapp", "Communication", 32_372.0, 133.0, "e1.whatsapp.net"),
            app("com.skype.raider", "Communication", 16_264.0, 76.0, "client-s.gateway.messenger.live.com"),
            app("com.android.vending", "Google", 100_115.0, 48.0, "play.googleapis.com"),
            app("com.google.android.gms", "Google", 60_805.0, 37.0, "www.googleapis.com"),
            app("com.google.android.googlequicksearchbox", "Google", 35_858.0, 45.0, "www.google.com"),
            app("com.google.android.apps.maps", "Google", 19_996.0, 38.0, "maps.googleapis.com"),
            app("com.google.android.youtube", "Video", 99_895.0, 32.0, "youtubei.googleapis.com"),
            app("com.netflix.mediaclient", "Video", 28_302.0, 33.0, "api-global.netflix.com"),
            app("com.amazon.mShop.android.shopping", "Shopping", 18_313.0, 59.0, "www.amazon.com"),
            app("com.ebay.mobile", "Shopping", 16_114.0, 70.0, "api.ebay.com"),
        ];
        let isps = vec![
            isp("Verizon", "USA", 80_227.0, 46.0, 0.0, 0.02, 12.0),
            isp("Jio 4G", "India", 52_397.0, 59.0, 215.0, 0.05, 20.0),
            isp("AT&T", "USA", 51_421.0, 53.0, 0.0, 0.05, 15.0),
            isp("Singtel", "Singapore", 34_609.0, 27.0, 0.0, 0.02, 4.0),
            isp("Boost Mobile", "USA", 21_854.0, 50.0, 0.0, 0.08, 15.0),
            isp("Sprint", "USA", 20_878.0, 51.0, 0.0, 0.08, 15.0),
            isp("3", "Hong Kong", 14_354.0, 53.0, 0.0, 0.05, 12.0),
            isp("MetroPCS", "USA", 13_282.0, 60.0, 0.0, 0.1, 18.0),
            isp("T-Mobile", "USA", 9_084.0, 45.0, 0.0, 0.05, 12.0),
            isp("CMHK", "Hong Kong", 5_820.0, 50.0, 0.0, 0.05, 12.0),
            isp("Celcom", "Malaysia", 4_120.0, 56.0, 0.0, 0.1, 15.0),
            isp("CSL", "Hong Kong", 3_099.0, 61.0, 0.0, 0.08, 15.0),
            isp("Cricket", "USA", 2_822.0, 93.0, 0.0, 0.64, 43.0),
            isp("Maxis", "Malaysia", 2_419.0, 40.0, 0.0, 0.08, 12.0),
            isp("U.S. Cellular", "USA", 1_988.0, 76.0, 0.0, 0.45, 43.0),
        ];
        let countries = vec![
            country("USA", 790, (39.8, -98.6)),
            country("UK", 116, (54.0, -2.0)),
            country("India", 70, (22.0, 79.0)),
            country("Italy", 68, (42.8, 12.8)),
            country("Malaysia", 43, (4.2, 102.0)),
            country("Brazil", 41, (-10.8, -52.9)),
            country("Indonesia", 37, (-2.5, 118.0)),
            country("Germany", 31, (51.1, 10.4)),
            country("Canada", 26, (56.1, -106.3)),
            country("Mexico", 25, (23.6, -102.6)),
            country("Philippines", 23, (12.9, 121.8)),
            country("Australia", 22, (-25.3, 133.8)),
            country("Hong Kong", 20, (22.3, 114.2)),
            country("France", 19, (46.6, 2.5)),
            country("Russia", 19, (61.5, 105.3)),
            country("Thailand", 18, (15.9, 100.9)),
            country("Greece", 16, (39.0, 22.0)),
            country("Spain", 13, (40.2, -3.7)),
            country("Poland", 13, (51.9, 19.1)),
            country("Singapore", 13, (1.35, 103.8)),
        ];
        // 334 whatsapp.net domains: 3 on the Facebook CDN, 331 on SoftLayer.
        let whatsapp_cdn_domains =
            vec!["mme.whatsapp.net".into(), "mmg.whatsapp.net".into(), "pps.whatsapp.net".into()];
        let whatsapp_softlayer_domains =
            (1..=331).map(|i| format!("e{i}.whatsapp.net")).collect();
        Self {
            apps,
            isps,
            countries,
            long_tail_apps: 6_250,
            whatsapp_softlayer_domains,
            whatsapp_cdn_domains,
        }
    }

    /// Looks up a representative app by package name.
    pub fn app(&self, package: &str) -> Option<&AppEntry> {
        self.apps.iter().find(|a| a.package == package)
    }

    /// Looks up an ISP by name.
    pub fn isp(&self, name: &str) -> Option<&IspEntry> {
        self.isps.iter().find(|i| i.name == name)
    }

    /// ISPs operating in `country`.
    pub fn isps_in(&self, country: &str) -> Vec<&IspEntry> {
        self.isps.iter().filter(|i| i.country == country).collect()
    }

    /// The total user count across the top-20 countries.
    pub fn top20_users(&self) -> u32 {
        self.countries.iter().map(|c| c.users).sum()
    }

    /// All 334 whatsapp.net domains.
    pub fn whatsapp_domains(&self) -> Vec<String> {
        let mut all = self.whatsapp_cdn_domains.clone();
        all.extend(self.whatsapp_softlayer_domains.iter().cloned());
        all
    }
}

fn app(package: &str, category: &'static str, weight: f64, median: f64, domain: &str) -> AppEntry {
    AppEntry {
        package: package.to_string(),
        category,
        weight,
        median_rtt_ms: median,
        domain: domain.to_string(),
    }
}

fn isp(
    name: &str,
    country: &str,
    weight: f64,
    dns_median_ms: f64,
    core_extra_ms: f64,
    non_lte_fraction: f64,
    dns_floor_ms: f64,
) -> IspEntry {
    IspEntry {
        name: name.to_string(),
        country: country.to_string(),
        weight,
        dns_median_ms,
        core_extra_ms,
        non_lte_fraction,
        dns_floor_ms,
    }
}

fn country(name: &str, users: u32, lat_lon: (f64, f64)) -> CountryEntry {
    CountryEntry { name: name.to_string(), users, lat_lon }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_sizes_match_the_paper() {
        let c = Catalog::paper();
        assert_eq!(c.apps.len(), 16);
        assert_eq!(c.isps.len(), 15);
        assert_eq!(c.countries.len(), 20);
        assert_eq!(c.whatsapp_domains().len(), 334);
        assert_eq!(c.whatsapp_cdn_domains.len(), 3);
        assert_eq!(c.top20_users(), 1_423);
    }

    #[test]
    fn representative_apps_have_table5_medians() {
        let c = Catalog::paper();
        assert_eq!(c.app("com.whatsapp").unwrap().median_rtt_ms, 133.0);
        assert_eq!(c.app("com.google.android.youtube").unwrap().median_rtt_ms, 32.0);
        assert_eq!(c.app("com.tencent.mm").unwrap().median_rtt_ms, 36.0);
        assert!(c.app("com.not.an.app").is_none());
        // Facebook is the most-measured app.
        let max = c.apps.iter().map(|a| a.weight).fold(0.0, f64::max);
        assert_eq!(c.app("com.facebook.katana").unwrap().weight, max);
    }

    #[test]
    fn isps_match_table6_shape() {
        let c = Catalog::paper();
        let singtel = c.isp("Singtel").unwrap();
        let cricket = c.isp("Cricket").unwrap();
        let jio = c.isp("Jio 4G").unwrap();
        assert!(singtel.dns_median_ms < cricket.dns_median_ms);
        assert!(singtel.dns_floor_ms < 10.0);
        assert!(cricket.dns_floor_ms >= 43.0);
        assert!(cricket.non_lte_fraction > 0.5);
        assert!(jio.core_extra_ms > 150.0);
        assert_eq!(jio.country, "India");
        assert_eq!(c.isps_in("USA").len(), 8);
        assert_eq!(c.isps_in("Hong Kong").len(), 3);
    }

    #[test]
    fn countries_are_ordered_by_users() {
        let c = Catalog::paper();
        assert_eq!(c.countries[0].name, "USA");
        assert_eq!(c.countries[0].users, 790);
        assert!(c.countries.windows(2).all(|w| w[0].users >= w[1].users));
    }
}
