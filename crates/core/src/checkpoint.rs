//! Deterministic checkpoint/restore for longitudinal fleet runs.
//!
//! A longitudinal run (days of virtual time, millions of flows) should be
//! interruptible: save the fleet's state at an epoch boundary, stop the
//! process, and later resume on a machine with a *different* shard count —
//! and still produce the exact report the uninterrupted run would have.
//!
//! # The flow-schedule cut
//!
//! The fleet runs under [`crate::config::EngineDiscipline::FlowKeyed`]: every
//! flow's RNG streams, link reservations, writer lane and source endpoint are
//! pure functions of `(seed, four-tuple)`, so the merged report of any
//! *partition* of a flow set equals the report of the unpartitioned set (this
//! is the same invariance that makes 1/2/8-shard digests identical, pinned by
//! `tests/fleet_determinism.rs`). A checkpoint exploits it by partitioning
//! the flow *schedule* at a cut time `T`:
//!
//! ```text
//!  flows with spec.at <  T   →  run now, fold into the checkpoint's base
//!  flows with spec.at >= T   →  carried verbatim as the pending set
//! ```
//!
//! [`FleetCheckpoint::capture`] runs the first part and serialises the merged
//! [`RunReport`] plus the pending flow specs; [`FleetCheckpoint::resume`]
//! runs the pending part on a fresh fleet (any shard count) and absorbs the
//! base back in. By partition invariance the resumed
//! [`FleetReport`] digest is bit-identical to the uninterrupted run's —
//! `tests/checkpoint_restore.rs` pins exactly that across shard counts,
//! batch sizes and lossy networks.
//!
//! Cutting at an *epoch boundary* (a multiple of
//! [`crate::config::MopEyeConfig::epoch_width`]) keeps the windowed epoch
//! sketches clean too: a flow started before the boundary may still produce
//! samples after it, and those fold into the correct epoch because the
//! windowed merge is keyed by sample timestamp, not by which phase ran the
//! flow.
//!
//! # What the format carries
//!
//! The JSON checkpoint (format version [`CHECKPOINT_FORMAT_VERSION`])
//! serialises the report's *semantic* content — samples, streaming and
//! windowed aggregates, relay/TUN counters, flow outcomes, finish time and
//! event counts — exactly the fields [`RunReport::fleet_digest`] covers,
//! plus the run parameters resume must reproduce (seed, congestion
//! algorithm, epoch geometry). Resource accounting (CPU ledger, pool and
//! mapping statistics, write-delay histograms) is partition-specific
//! bookkeeping, excluded from the digest, and deliberately **not**
//! checkpointed: those fields restore as zeroed defaults.

use std::net::IpAddr;

use mop_json::{json, Value};
use mop_measure::{AggregateStore, NetKind, WindowedAggregateStore};
use mop_packet::{Endpoint, FourTuple};
use mop_simnet::SimTime;
use mop_tcpstack::CongestionAlgo;
use mop_tun::{FlowKind, FlowSpec, TunStats};

use crate::report::RunReport;
use crate::shard::{FleetEngine, FleetReport};
use crate::stats::{FlowOutcome, RelayStats, RttSample, SampleKind};

/// Version tag written into every checkpoint; [`FleetCheckpoint::from_json`]
/// rejects anything else.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 1;

/// A saved fleet run: everything needed to resume at the cut and reproduce
/// the uninterrupted run's report bit for bit. See the [module docs](self).
#[derive(Debug)]
pub struct FleetCheckpoint {
    /// Engine seed the run used (flow-keyed streams derive from it; resume
    /// must run under the same seed).
    pub seed: u64,
    /// Shard count at save time. Informational only — resume may use any.
    pub shards_at_save: usize,
    /// Congestion-control algorithm of the run.
    pub congestion: CongestionAlgo,
    /// Epoch width of the windowed aggregates, if the run enabled them.
    pub epoch_width_ns: Option<u64>,
    /// Live-epoch window length of the windowed aggregates.
    pub epoch_window: usize,
    /// The cut time: flows scheduled strictly before it are folded into
    /// [`FleetCheckpoint::base`]; the rest are pending.
    pub cut: SimTime,
    /// The merged report of everything that ran before the cut.
    pub base: RunReport,
    /// Flow specs scheduled at or after the cut, still to run.
    pub pending: Vec<FlowSpec>,
}

impl FleetCheckpoint {
    /// Runs the pre-cut part of `flows` on `fleet` and captures a
    /// checkpoint at `cut`: flows with `spec.at < cut` run to completion and
    /// their merged report becomes the base; the rest are carried pending.
    ///
    /// For clean epoch windows, `cut` should be an epoch boundary (a
    /// multiple of the configured epoch width) — [`epoch_boundary`] helps.
    pub fn capture(fleet: &FleetEngine, flows: Vec<FlowSpec>, cut: SimTime) -> Self {
        let (ran, pending) = split_at(flows, cut);
        let report = fleet.run(ran);
        let engine = &fleet.config().engine;
        Self {
            seed: engine.seed,
            shards_at_save: fleet.config().shards,
            congestion: engine.congestion,
            epoch_width_ns: engine.epoch_width.map(|w| w.as_nanos()),
            epoch_window: engine.epoch_window,
            cut,
            base: report.merged,
            pending,
        }
    }

    /// Runs the pending flows on `fleet` (any shard count) and folds the
    /// base back in, producing the report the uninterrupted run would have.
    ///
    /// # Panics
    ///
    /// Panics if `fleet` is configured incompatibly with the saved run —
    /// different seed, congestion algorithm or epoch geometry. (Shard count
    /// and batch size may differ freely: the merged report is invariant to
    /// both.) [`FleetCheckpoint::try_resume`] is the non-panicking variant
    /// long-lived callers should prefer.
    pub fn resume(self, fleet: &FleetEngine) -> FleetReport {
        self.try_resume(fleet).unwrap_or_else(|reason| panic!("{reason}"))
    }

    /// Like [`FleetCheckpoint::resume`], but reports an incompatible fleet
    /// configuration as a descriptive error instead of panicking — the
    /// entry point for servers that must survive a bad resume request.
    pub fn try_resume(self, fleet: &FleetEngine) -> Result<FleetReport, String> {
        let engine = &fleet.config().engine;
        if engine.seed != self.seed {
            return Err(format!(
                "resume requires the saved seed {:#018x}, fleet has {:#018x}",
                self.seed, engine.seed
            ));
        }
        if engine.congestion != self.congestion {
            return Err(format!(
                "resume requires the saved congestion algorithm {}, fleet has {}",
                congestion_str(self.congestion),
                congestion_str(engine.congestion)
            ));
        }
        if engine.epoch_width.map(|w| w.as_nanos()) != self.epoch_width_ns {
            return Err(format!(
                "resume requires the saved epoch width {:?} ns, fleet has {:?} ns",
                self.epoch_width_ns,
                engine.epoch_width.map(|w| w.as_nanos())
            ));
        }
        if self.epoch_width_ns.is_some() && engine.epoch_window != self.epoch_window {
            return Err(format!(
                "resume requires the saved epoch window {}, fleet has {}",
                self.epoch_window, engine.epoch_window
            ));
        }
        let mut resumed = fleet.run(self.pending);
        let mut merged = self.base;
        merged.absorb(std::mem::replace(&mut resumed.merged, RunReport::empty()));
        merged.canonicalise();
        resumed.merged = merged;
        Ok(resumed)
    }

    /// Serialises the checkpoint to its JSON document.
    pub fn to_json(&self) -> Value {
        let pending: Vec<Value> = self.pending.iter().map(flow_spec_to_json).collect();
        json!({
            "format": "mopeye-fleet-checkpoint",
            "version": CHECKPOINT_FORMAT_VERSION as i64,
            "seed": format!("{:016x}", self.seed),
            "shards_at_save": self.shards_at_save as i64,
            "congestion": congestion_str(self.congestion),
            "epoch_width_ns": match self.epoch_width_ns {
                Some(w) => Value::from(w as i64),
                None => Value::Null,
            },
            "epoch_window": self.epoch_window as i64,
            "cut_ns": self.cut.as_nanos() as i64,
            "base": run_report_to_json(&self.base),
            "pending": pending,
        })
    }

    /// Parses a checkpoint back from its JSON document. Returns `None` on a
    /// wrong format tag, unknown version, or any structural mismatch.
    pub fn from_json(value: &Value) -> Option<Self> {
        if value["format"].as_str()? != "mopeye-fleet-checkpoint" {
            return None;
        }
        if value["version"].as_u64()? != CHECKPOINT_FORMAT_VERSION {
            return None;
        }
        let pending = value["pending"]
            .as_array()?
            .iter()
            .map(flow_spec_from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            seed: u64::from_str_radix(value["seed"].as_str()?, 16).ok()?,
            shards_at_save: value["shards_at_save"].as_u64()? as usize,
            congestion: congestion_from_str(value["congestion"].as_str()?)?,
            epoch_width_ns: if value["epoch_width_ns"].is_null() {
                None
            } else {
                Some(value["epoch_width_ns"].as_u64()?)
            },
            epoch_window: value["epoch_window"].as_u64()? as usize,
            cut: SimTime::from_nanos(value["cut_ns"].as_u64()?),
            base: run_report_from_json(&value["base"])?,
            pending,
        })
    }

    /// The checkpoint as a pretty-printed JSON string (the on-disk format).
    pub fn to_json_string(&self) -> String {
        mop_json::to_string_pretty(&self.to_json())
    }

    /// Parses a checkpoint from its on-disk JSON string.
    pub fn from_json_str(text: &str) -> Option<Self> {
        Self::from_json(&mop_json::from_str(text).ok()?)
    }

    /// Parses a checkpoint from its on-disk JSON string, describing *why* a
    /// rejected document was rejected — truncated JSON, a foreign format
    /// tag, an unknown version, or a structurally malformed body. The
    /// server's `fleet.resume` surfaces these messages to clients verbatim.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = mop_json::from_str(text)
            .map_err(|e| format!("checkpoint is not valid JSON: {e}"))?;
        let Some(format) = value["format"].as_str() else {
            return Err("checkpoint has no \"format\" string field".into());
        };
        if format != "mopeye-fleet-checkpoint" {
            return Err(format!("not a fleet checkpoint: format tag {format:?}"));
        }
        let Some(version) = value["version"].as_u64() else {
            return Err("checkpoint has no \"version\" number field".into());
        };
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} \
                 (this build reads version {CHECKPOINT_FORMAT_VERSION})"
            ));
        }
        Self::from_json(&value)
            .ok_or_else(|| "checkpoint body is malformed (missing or mistyped field)".into())
    }
}

/// Splits a flow schedule at `cut`: `(ran, pending)` where `ran` holds every
/// spec with `at < cut` (order preserved) and `pending` the rest.
pub fn split_at(flows: Vec<FlowSpec>, cut: SimTime) -> (Vec<FlowSpec>, Vec<FlowSpec>) {
    let mut ran = Vec::new();
    let mut pending = Vec::new();
    for spec in flows {
        if spec.at < cut {
            ran.push(spec);
        } else {
            pending.push(spec);
        }
    }
    (ran, pending)
}

/// The start of epoch `epoch` under `width_ns`-wide epochs — the canonical
/// cut times for [`FleetCheckpoint::capture`].
pub fn epoch_boundary(width_ns: u64, epoch: u64) -> SimTime {
    SimTime::from_nanos(width_ns.max(1).saturating_mul(epoch))
}

// ----- report serialisation ------------------------------------------------

/// Serialises a [`RunReport`]'s semantic content — the digest-covered fields
/// plus the event counters — to the checkpoint JSON encoding. The control
/// plane reuses this for streamed per-step report deltas, so a subscriber
/// can fold deltas with [`RunReport::absorb`] exactly like a resumed fleet.
pub fn run_report_to_json(report: &RunReport) -> Value {
    let samples: Vec<Value> = report.samples.iter().map(sample_to_json).collect();
    let flows: Vec<Value> = report.flows.iter().map(outcome_to_json).collect();
    json!({
        "samples": samples,
        "aggregates": report.aggregates.to_json(),
        "windows": match &report.windows {
            Some(windows) => windows.to_json(),
            None => Value::Null,
        },
        "relay": relay_to_json(&report.relay),
        "tun": tun_to_json(&report.tun),
        "flows": flows,
        "finished_at_ns": report.finished_at.as_nanos() as i64,
        "events_processed": report.events_processed as i64,
        "events_scheduled": report.events_scheduled as i64,
    })
}

/// Restores a report serialised by [`run_report_to_json`]. Partition-local
/// resource accounting (ledger, pools, mapping, write delays) is not part of
/// the encoding and restores as zeroed defaults; those fields are excluded
/// from [`RunReport::fleet_digest`], which the round trip preserves exactly.
pub fn run_report_from_json(value: &Value) -> Option<RunReport> {
    let samples =
        value["samples"].as_array()?.iter().map(sample_from_json).collect::<Option<Vec<_>>>()?;
    let flows =
        value["flows"].as_array()?.iter().map(outcome_from_json).collect::<Option<Vec<_>>>()?;
    let mut report = RunReport::empty();
    report.samples = samples;
    report.aggregates = AggregateStore::from_json(&value["aggregates"])?;
    report.windows = if value["windows"].is_null() {
        None
    } else {
        Some(WindowedAggregateStore::from_json(&value["windows"])?)
    };
    report.relay = relay_from_json(&value["relay"])?;
    report.tun = tun_from_json(&value["tun"])?;
    report.flows = flows;
    report.finished_at = SimTime::from_nanos(value["finished_at_ns"].as_u64()?);
    report.events_processed = value["events_processed"].as_u64()?;
    report.events_scheduled = value["events_scheduled"].as_u64()?;
    Some(report)
}

fn sample_to_json(sample: &RttSample) -> Value {
    json!({
        "kind": sample_kind_str(sample.kind),
        "flow": four_tuple_to_json(&sample.flow),
        "uid": match sample.uid {
            Some(uid) => Value::from(i64::from(uid)),
            None => Value::Null,
        },
        "package": opt_str(&sample.package),
        "domain": opt_str(&sample.domain),
        "measured_ms": sample.measured_ms,
        "true_ms": sample.true_ms,
        "tcpdump_ms": match sample.tcpdump_ms {
            Some(ms) => Value::from(ms),
            None => Value::Null,
        },
        "at_ns": sample.at.as_nanos() as i64,
    })
}

fn sample_from_json(value: &Value) -> Option<RttSample> {
    Some(RttSample {
        kind: sample_kind_from_str(value["kind"].as_str()?)?,
        flow: four_tuple_from_json(&value["flow"])?,
        uid: if value["uid"].is_null() {
            None
        } else {
            Some(u32::try_from(value["uid"].as_i64()?).ok()?)
        },
        package: opt_str_from(&value["package"]),
        domain: opt_str_from(&value["domain"]),
        measured_ms: value["measured_ms"].as_f64()?,
        true_ms: value["true_ms"].as_f64()?,
        tcpdump_ms: if value["tcpdump_ms"].is_null() {
            None
        } else {
            Some(value["tcpdump_ms"].as_f64()?)
        },
        at: SimTime::from_nanos(value["at_ns"].as_u64()?),
    })
}

fn outcome_to_json(outcome: &FlowOutcome) -> Value {
    json!({
        "flow": four_tuple_to_json(&outcome.flow),
        "package": outcome.package.clone(),
        "started_at_ns": outcome.started_at.as_nanos() as i64,
        "finished_at_ns": outcome.finished_at.as_nanos() as i64,
        "bytes_received": outcome.bytes_received as i64,
        "completed": outcome.completed,
    })
}

fn outcome_from_json(value: &Value) -> Option<FlowOutcome> {
    Some(FlowOutcome {
        flow: four_tuple_from_json(&value["flow"])?,
        package: value["package"].as_str()?.to_string(),
        started_at: SimTime::from_nanos(value["started_at_ns"].as_u64()?),
        finished_at: SimTime::from_nanos(value["finished_at_ns"].as_u64()?),
        bytes_received: value["bytes_received"].as_u64()? as usize,
        completed: value["completed"].as_bool()?,
    })
}

fn relay_to_json(relay: &RelayStats) -> Value {
    json!({
        "syns": relay.syns as i64,
        "connects_ok": relay.connects_ok as i64,
        "connects_failed": relay.connects_failed as i64,
        "data_segments_out": relay.data_segments_out as i64,
        "data_segments_in": relay.data_segments_in as i64,
        "pure_acks_discarded": relay.pure_acks_discarded as i64,
        "fins": relay.fins as i64,
        "rsts": relay.rsts as i64,
        "udp_datagrams": relay.udp_datagrams as i64,
        "dns_queries": relay.dns_queries as i64,
        "bytes_out": relay.bytes_out as i64,
        "bytes_in": relay.bytes_in as i64,
        "parse_errors": relay.parse_errors as i64,
        "idle_reaped": relay.idle_reaped as i64,
        "retransmits": relay.retransmits as i64,
        "fast_retransmits": relay.fast_retransmits as i64,
        "rto_fires": relay.rto_fires as i64,
        "sacked_segments": relay.sacked_segments as i64,
    })
}

fn relay_from_json(value: &Value) -> Option<RelayStats> {
    Some(RelayStats {
        syns: value["syns"].as_u64()?,
        connects_ok: value["connects_ok"].as_u64()?,
        connects_failed: value["connects_failed"].as_u64()?,
        data_segments_out: value["data_segments_out"].as_u64()?,
        data_segments_in: value["data_segments_in"].as_u64()?,
        pure_acks_discarded: value["pure_acks_discarded"].as_u64()?,
        fins: value["fins"].as_u64()?,
        rsts: value["rsts"].as_u64()?,
        udp_datagrams: value["udp_datagrams"].as_u64()?,
        dns_queries: value["dns_queries"].as_u64()?,
        bytes_out: value["bytes_out"].as_u64()?,
        bytes_in: value["bytes_in"].as_u64()?,
        parse_errors: value["parse_errors"].as_u64()?,
        idle_reaped: value["idle_reaped"].as_u64()?,
        retransmits: value["retransmits"].as_u64()?,
        fast_retransmits: value["fast_retransmits"].as_u64()?,
        rto_fires: value["rto_fires"].as_u64()?,
        sacked_segments: value["sacked_segments"].as_u64()?,
        // Wall-clock backpressure observability, not simulated behaviour
        // (excluded from equality and digests): restarts from zero.
        sink_stalls: 0,
    })
}

fn tun_to_json(tun: &TunStats) -> Value {
    json!({
        "packets_from_apps": tun.packets_from_apps as i64,
        "bytes_from_apps": tun.bytes_from_apps as i64,
        "packets_to_apps": tun.packets_to_apps as i64,
        "bytes_to_apps": tun.bytes_to_apps as i64,
    })
}

fn tun_from_json(value: &Value) -> Option<TunStats> {
    Some(TunStats {
        packets_from_apps: value["packets_from_apps"].as_u64()?,
        bytes_from_apps: value["bytes_from_apps"].as_u64()?,
        packets_to_apps: value["packets_to_apps"].as_u64()?,
        bytes_to_apps: value["bytes_to_apps"].as_u64()?,
        // Wall-clock dispatcher backpressure: restarts from zero.
        dispatch_stalls: 0,
    })
}

// ----- flow-spec serialisation ---------------------------------------------

fn flow_spec_to_json(spec: &FlowSpec) -> Value {
    json!({
        "at_ns": spec.at.as_nanos() as i64,
        "uid": i64::from(spec.uid),
        "package": spec.package.clone(),
        "src": match &spec.src {
            Some(src) => endpoint_to_json(src),
            None => Value::Null,
        },
        "dst": endpoint_to_json(&spec.dst),
        "domain": opt_str(&spec.domain),
        "request_bytes": spec.request_bytes as i64,
        "close_after": spec.close_after as i64,
        "kind": flow_kind_str(spec.kind),
        "network": match spec.network {
            Some(network) => Value::from(net_kind_str(network)),
            None => Value::Null,
        },
        "isp": opt_str(&spec.isp),
    })
}

fn flow_spec_from_json(value: &Value) -> Option<FlowSpec> {
    Some(FlowSpec {
        at: SimTime::from_nanos(value["at_ns"].as_u64()?),
        uid: u32::try_from(value["uid"].as_i64()?).ok()?,
        package: value["package"].as_str()?.to_string(),
        src: if value["src"].is_null() { None } else { Some(endpoint_from_json(&value["src"])?) },
        dst: endpoint_from_json(&value["dst"])?,
        domain: opt_str_from(&value["domain"]),
        request_bytes: value["request_bytes"].as_u64()? as usize,
        close_after: value["close_after"].as_u64()? as usize,
        kind: flow_kind_from_str(value["kind"].as_str()?)?,
        network: if value["network"].is_null() {
            None
        } else {
            net_kind_from_str(value["network"].as_str()?)
        },
        isp: opt_str_from(&value["isp"]),
    })
}

fn endpoint_to_json(endpoint: &Endpoint) -> Value {
    json!({ "addr": endpoint.addr.to_string(), "port": i64::from(endpoint.port) })
}

fn endpoint_from_json(value: &Value) -> Option<Endpoint> {
    let addr: IpAddr = value["addr"].as_str()?.parse().ok()?;
    Some(Endpoint::new(addr, u16::try_from(value["port"].as_i64()?).ok()?))
}

fn four_tuple_to_json(flow: &FourTuple) -> Value {
    json!({ "src": endpoint_to_json(&flow.src), "dst": endpoint_to_json(&flow.dst) })
}

fn four_tuple_from_json(value: &Value) -> Option<FourTuple> {
    Some(FourTuple::new(endpoint_from_json(&value["src"])?, endpoint_from_json(&value["dst"])?))
}

// ----- enum tags -----------------------------------------------------------
//
// Local tag tables: the measurement crate keeps its own JSON helpers
// crate-private, and the checkpoint format's tags are part of *this* module's
// contract anyway.

fn sample_kind_str(kind: SampleKind) -> &'static str {
    match kind {
        SampleKind::Tcp => "Tcp",
        SampleKind::Dns => "Dns",
    }
}

fn sample_kind_from_str(tag: &str) -> Option<SampleKind> {
    match tag {
        "Tcp" => Some(SampleKind::Tcp),
        "Dns" => Some(SampleKind::Dns),
        _ => None,
    }
}

fn flow_kind_str(kind: FlowKind) -> &'static str {
    match kind {
        FlowKind::Tcp => "Tcp",
        FlowKind::Dns => "Dns",
    }
}

fn flow_kind_from_str(tag: &str) -> Option<FlowKind> {
    match tag {
        "Tcp" => Some(FlowKind::Tcp),
        "Dns" => Some(FlowKind::Dns),
        _ => None,
    }
}

fn net_kind_str(kind: NetKind) -> &'static str {
    match kind {
        NetKind::Wifi => "Wifi",
        NetKind::Lte => "Lte",
        NetKind::Umts3g => "Umts3g",
        NetKind::Gprs2g => "Gprs2g",
    }
}

fn net_kind_from_str(tag: &str) -> Option<NetKind> {
    match tag {
        "Wifi" => Some(NetKind::Wifi),
        "Lte" => Some(NetKind::Lte),
        "Umts3g" => Some(NetKind::Umts3g),
        "Gprs2g" => Some(NetKind::Gprs2g),
        _ => None,
    }
}

fn congestion_str(congestion: CongestionAlgo) -> &'static str {
    match congestion {
        CongestionAlgo::Reno => "Reno",
        CongestionAlgo::Cubic => "Cubic",
    }
}

fn congestion_from_str(tag: &str) -> Option<CongestionAlgo> {
    match tag {
        "Reno" => Some(CongestionAlgo::Reno),
        "Cubic" => Some(CongestionAlgo::Cubic),
        _ => None,
    }
}

fn opt_str(text: &Option<String>) -> Value {
    match text {
        Some(text) => Value::from(text.clone()),
        None => Value::Null,
    }
}

fn opt_str_from(value: &Value) -> Option<String> {
    value.as_str().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_simnet::SimDuration;

    fn sample() -> RttSample {
        RttSample {
            kind: SampleKind::Tcp,
            flow: FourTuple::new(
                Endpoint::v4(10, 0, 0, 2, 40_001),
                Endpoint::v4(216, 58, 221, 132, 443),
            ),
            uid: Some(10_100),
            package: Some("com.android.chrome".into()),
            domain: Some("www.google.com".into()),
            measured_ms: 37.125,
            true_ms: 36.0625,
            tcpdump_ms: Some(37.0),
            at: SimTime::from_millis(1234),
        }
    }

    fn spec() -> FlowSpec {
        FlowSpec {
            at: SimTime::from_millis(5),
            uid: 10_200,
            package: "com.google.android.youtube".into(),
            src: Some(Endpoint::v4(10, 0, 1, 7, 30_004)),
            dst: Endpoint::v4(31, 13, 95, 36, 443),
            domain: Some("video.example.com".into()),
            request_bytes: 400,
            close_after: 64 * 1024,
            kind: FlowKind::Tcp,
            network: Some(NetKind::Lte),
            isp: Some("CMHK".into()),
        }
    }

    #[test]
    fn sample_round_trips_bit_identically() {
        let original = sample();
        let restored = sample_from_json(&sample_to_json(&original)).unwrap();
        assert_eq!(original, restored);

        let mut sparse = original;
        sparse.uid = None;
        sparse.package = None;
        sparse.domain = None;
        sparse.tcpdump_ms = None;
        sparse.kind = SampleKind::Dns;
        let restored = sample_from_json(&sample_to_json(&sparse)).unwrap();
        assert_eq!(sparse, restored);
    }

    #[test]
    fn flow_spec_round_trips() {
        let original = spec();
        let restored = flow_spec_from_json(&flow_spec_to_json(&original)).unwrap();
        assert_eq!(original.at, restored.at);
        assert_eq!(original.src, restored.src);
        assert_eq!(original.dst, restored.dst);
        assert_eq!(original.network, restored.network);
        assert_eq!(original.isp, restored.isp);
        assert_eq!(original.kind, restored.kind);

        let mut sparse = original;
        sparse.src = None;
        sparse.domain = None;
        sparse.network = None;
        sparse.isp = None;
        sparse.kind = FlowKind::Dns;
        let restored = flow_spec_from_json(&flow_spec_to_json(&sparse)).unwrap();
        assert_eq!(sparse.src, restored.src);
        assert_eq!(sparse.network, restored.network);
        assert_eq!(sparse.kind, restored.kind);
    }

    #[test]
    fn report_round_trip_preserves_the_fleet_digest() {
        let mut report = RunReport::empty();
        report.samples.push(sample());
        report.aggregates.observe_parts(
            mop_measure::MeasurementKind::Tcp,
            NetKind::Lte,
            "com.android.chrome",
            "www.google.com",
            "CMHK",
            7,
            "",
            37.125,
        );
        let mut windows = WindowedAggregateStore::new(1_000_000_000, 4);
        windows.observe_parts(
            1_234_000_000,
            mop_measure::MeasurementKind::Tcp,
            NetKind::Lte,
            "com.android.chrome",
            "www.google.com",
            "CMHK",
            7,
            "",
            37.125,
        );
        report.windows = Some(windows);
        report.relay.syns = 3;
        report.relay.bytes_in = 98_304;
        report.relay.sink_stalls = 17; // wall-clock noise: not checkpointed
        report.tun.packets_from_apps = 11;
        report.flows.push(FlowOutcome {
            flow: sample().flow,
            package: "com.android.chrome".into(),
            started_at: SimTime::from_millis(5),
            finished_at: SimTime::from_millis(1300),
            bytes_received: 4096,
            completed: true,
        });
        report.finished_at = SimTime::from_millis(1300);
        report.events_processed = 42;
        report.events_scheduled = 50;

        let restored = run_report_from_json(&run_report_to_json(&report)).unwrap();
        assert_eq!(report.fleet_digest(), restored.fleet_digest());
        assert_eq!(report.samples, restored.samples);
        assert_eq!(report.relay, restored.relay); // sink_stalls excluded from eq
        assert_eq!(report.windows, restored.windows);
        assert_eq!(report.events_scheduled, restored.events_scheduled);
    }

    #[test]
    fn checkpoint_document_round_trips_through_text() {
        let checkpoint = FleetCheckpoint {
            seed: 0xdead_beef_cafe_f00d,
            shards_at_save: 4,
            congestion: CongestionAlgo::Cubic,
            epoch_width_ns: Some(60_000_000_000),
            epoch_window: 16,
            cut: SimTime::from_secs(120),
            base: RunReport::empty(),
            pending: vec![spec()],
        };
        let text = checkpoint.to_json_string();
        let restored = FleetCheckpoint::from_json_str(&text).unwrap();
        assert_eq!(restored.seed, checkpoint.seed);
        assert_eq!(restored.shards_at_save, 4);
        assert_eq!(restored.congestion, CongestionAlgo::Cubic);
        assert_eq!(restored.epoch_width_ns, Some(60_000_000_000));
        assert_eq!(restored.epoch_window, 16);
        assert_eq!(restored.cut, checkpoint.cut);
        assert_eq!(restored.pending.len(), 1);
        assert_eq!(restored.base.fleet_digest(), checkpoint.base.fleet_digest());

        assert!(FleetCheckpoint::from_json_str("{\"format\":\"other\"}").is_none());
    }

    #[test]
    fn parse_rejects_broken_documents_with_descriptive_errors() {
        let good = FleetCheckpoint {
            seed: 7,
            shards_at_save: 2,
            congestion: CongestionAlgo::Reno,
            epoch_width_ns: Some(1_000_000_000),
            epoch_window: 8,
            cut: SimTime::from_secs(4),
            base: RunReport::empty(),
            pending: vec![spec()],
        }
        .to_json_string();
        assert!(FleetCheckpoint::parse(&good).is_ok());

        // Truncated JSON: the parse error names the syntax failure.
        let truncated = &good[..good.len() / 2];
        let err = FleetCheckpoint::parse(truncated).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");

        // Foreign format tag.
        let err = FleetCheckpoint::parse("{\"format\": \"something-else\"}").unwrap_err();
        assert!(err.contains("format tag \"something-else\""), "{err}");

        // Missing format field entirely.
        let err = FleetCheckpoint::parse("{}").unwrap_err();
        assert!(err.contains("no \"format\""), "{err}");

        // Unknown version.
        let future = good.replace("\"version\": 1", "\"version\": 999");
        let err = FleetCheckpoint::parse(&future).unwrap_err();
        assert!(err.contains("version 999"), "{err}");

        // Mistyped body field (seed must be a hex string).
        let mistyped = good.replace("\"seed\": \"0000000000000007\"", "\"seed\": 7");
        let err = FleetCheckpoint::parse(&mistyped).unwrap_err();
        assert!(err.contains("malformed"), "{err}");
    }

    #[test]
    fn try_resume_rejects_mismatched_fleets_without_panicking() {
        use crate::shard::{FleetConfig, FleetEngine};
        use mop_simnet::SimNetwork;

        let checkpoint = || FleetCheckpoint {
            seed: 7,
            shards_at_save: 2,
            congestion: CongestionAlgo::Reno,
            epoch_width_ns: Some(1_000_000_000),
            epoch_window: 8,
            cut: SimTime::from_secs(4),
            base: RunReport::empty(),
            pending: Vec::new(),
        };
        let fleet_with = |config: FleetConfig| {
            FleetEngine::new(config, SimNetwork::builder().seed(7).with_table2_destinations())
        };
        let epochs = |config: FleetConfig| config.with_epochs(SimDuration::from_secs(1), 8);

        // Wrong seed.
        let fleet = fleet_with(epochs(FleetConfig::new(1).with_seed(8)));
        let err = checkpoint().try_resume(&fleet).unwrap_err();
        assert!(err.contains("saved seed"), "{err}");

        // Wrong congestion algorithm.
        let fleet = fleet_with(epochs(
            FleetConfig::new(1).with_seed(7).with_congestion(CongestionAlgo::Cubic),
        ));
        let err = checkpoint().try_resume(&fleet).unwrap_err();
        assert!(err.contains("congestion"), "{err}");

        // Wrong epoch width (epoch-less fleet vs a windowed checkpoint).
        let fleet = fleet_with(FleetConfig::new(1).with_seed(7));
        let err = checkpoint().try_resume(&fleet).unwrap_err();
        assert!(err.contains("epoch width"), "{err}");

        // Wrong epoch window.
        let fleet =
            fleet_with(FleetConfig::new(1).with_seed(7).with_epochs(SimDuration::from_secs(1), 4));
        let err = checkpoint().try_resume(&fleet).unwrap_err();
        assert!(err.contains("epoch window"), "{err}");

        // A matching fleet resumes cleanly (empty pending set: base only).
        let fleet = fleet_with(epochs(FleetConfig::new(1).with_seed(7)));
        assert!(checkpoint().try_resume(&fleet).is_ok());
    }

    #[test]
    fn split_at_partitions_by_start_time() {
        let mut flows = Vec::new();
        for ms in [0u64, 10, 99, 100, 101, 500] {
            let mut f = spec();
            f.at = SimTime::from_millis(ms);
            flows.push(f);
        }
        let (ran, pending) = split_at(flows, SimTime::from_millis(100));
        assert_eq!(ran.len(), 3);
        assert_eq!(pending.len(), 3);
        assert!(ran.iter().all(|f| f.at < SimTime::from_millis(100)));
        assert!(pending.iter().all(|f| f.at >= SimTime::from_millis(100)));
    }

    #[test]
    fn epoch_boundary_is_a_multiple_of_the_width() {
        let width = SimDuration::from_secs(60).as_nanos();
        assert_eq!(epoch_boundary(width, 0), SimTime::ZERO);
        assert_eq!(epoch_boundary(width, 3), SimTime::from_secs(180));
    }
}
