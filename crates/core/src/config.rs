//! Engine configuration: every design decision the paper evaluates is a knob
//! here, so the benches can compare MopEye's choices against the
//! alternatives used by ToyVpn, PrivacyGuard, Haystack and MobiPerf.

use mop_procnet::MappingStrategy;
use mop_simnet::{wheel::DEFAULT_GRANULARITY, SchedulerKind, SimDuration};
use mop_tcpstack::CongestionAlgo;
use mop_tun::ReadStrategy;

/// How packets are written back to the VPN tunnel (§3.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteScheme {
    /// Writing is performed by whichever thread has a packet to send.
    Direct,
    /// Packets are queued and written by the dedicated TunWriter thread
    /// (MopEye's choice).
    Queue,
}

/// How packets are enqueued for the TunWriter (§3.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueScheme {
    /// Traditional put: the consumer parks in `wait()` whenever the queue is
    /// empty, so most puts pay a wait/notify wake-up.
    OldPut,
    /// MopEye's sleep-counter algorithm: the consumer keeps checking the
    /// queue for a while before parking, so puts almost never pay the
    /// wake-up.
    NewPut,
}

/// How sockets are excluded from the VPN to avoid a routing loop (§3.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectMode {
    /// `VpnService.protect(socket)` on every socket (required before
    /// Android 5.0); costs up to several milliseconds per connection.
    PerSocket,
    /// `addDisallowedApplication()` once at start-up (Android 5.0+).
    DisallowedApplication,
}

/// Where the post-`connect()` timestamp is taken (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestampMode {
    /// In the temporary blocking socket-connect thread, immediately after
    /// `connect()` returns (MopEye's choice).
    BlockingConnectThread,
    /// From the non-blocking selector notification, which adds the event
    /// dispatch delay when other socket events are pending.
    SelectorNotification,
}

/// Clock used for timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockGranularity {
    /// Nanosecond timestamps (`System.nanoTime()`), MopEye's choice.
    Nanosecond,
    /// Millisecond timestamps (`System.currentTimeMillis()`), one of the
    /// sources of MobiPerf's inaccuracy identified in §4.1.1.
    Millisecond,
}

/// How the engine keys its stochastic and contended per-flow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineDiscipline {
    /// One device: a single RNG stream, a shared TunWriter queue and
    /// sequential port allocation — the faithful single-handset model every
    /// paper experiment uses.
    #[default]
    SharedDevice,
    /// A fleet of devices: every connection four-tuple gets its own RNG
    /// stream (derived from `seed ^ flow.stable_hash()`), its own
    /// writer-queue timing lane and a pre-assigned source endpoint. A flow's
    /// entire timeline then depends only on the flow itself, which makes a
    /// sharded run produce *identical* merged results for any shard count.
    ///
    /// Flow-keyed runs expect [`mop_tun::ReadStrategy::Blocking`] reads and
    /// pre-assigned [`mop_tun::FlowSpec::src`] endpoints; polling readers
    /// keep cross-flow poll-loop state that would reintroduce
    /// partition-dependence.
    FlowKeyed,
}

/// How the MainWorker's CPU capacity constrains the relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerModel {
    /// Packet processing is charged to the CPU ledger but never delays the
    /// relay — the original engine behaviour, right for accuracy and
    /// overhead experiments where the device is far from saturation.
    #[default]
    Unbounded,
    /// The MainWorker is a serial resource: each packet's processing cost
    /// occupies the worker, and packets arriving faster than it can drain
    /// them queue behind it. Under this model a single event loop saturates
    /// at its per-packet cost, and a sharded engine's aggregate relay
    /// capacity scales with the number of shards — the effect the fleet
    /// benchmark measures.
    Saturating,
}

/// The engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MopEyeConfig {
    /// Strategy for retrieving packets from the TUN device (§3.1).
    pub read_strategy: ReadStrategy,
    /// Scheme for writing packets back to the tunnel (§3.5.1).
    pub write_scheme: WriteScheme,
    /// Enqueue algorithm used with [`WriteScheme::Queue`] (§3.5.1).
    pub enqueue_scheme: EnqueueScheme,
    /// Packet-to-app mapping strategy (§3.3).
    pub mapping: MappingStrategy,
    /// Socket protection mode (§3.5.2).
    pub protect: ProtectMode,
    /// Where the post-connect timestamp is taken (§2.4).
    pub timestamp_mode: TimestampMode,
    /// Timestamp clock granularity.
    pub clock: ClockGranularity,
    /// Inspect relayed content (what Haystack does and MopEye deliberately
    /// does not, §5); charged as per-kilobyte CPU.
    pub content_inspection: bool,
    /// Random seed for the engine's own noise (thread scheduling, costs).
    pub seed: u64,
    /// How stochastic and contended per-flow state is keyed.
    pub discipline: EngineDiscipline,
    /// Whether the MainWorker's CPU capacity back-pressures the relay.
    pub worker: WorkerModel,
    /// Safety valve: a run aborts after this many events. Fleet scenarios
    /// with 100k+ connections need far more than the single-device default.
    pub max_events: u64,
    /// Whether the report retains the raw per-sample vector
    /// (`RunReport::samples`) alongside the streaming aggregates.
    ///
    /// `true` (the default) keeps the vector — the accuracy experiments and
    /// the fleet digest need every sample. `false` drops each sample after
    /// folding it into `RunReport::aggregates`, making a run's measurement
    /// memory O(apps × networks) instead of O(samples) — the mode the crowd
    /// `report` binary uses.
    pub retain_samples: bool,
    /// Which scheduler backs the event loop: the O(1) timing wheel (the
    /// default) or the legacy O(log n) binary heap, kept for reference and
    /// for the wheel-vs-heap equivalence pins.
    pub scheduler: SchedulerKind,
    /// Tick granularity of the timing wheel (rounded up to a power of two
    /// nanoseconds; ignored by the heap scheduler). Coarser ticks cascade
    /// less but batch more entries per slot sort.
    pub wheel_granularity: SimDuration,
    /// Tear down TCP connections that have relayed nothing for this long.
    ///
    /// `None` (the default) arms no timers and reproduces the historical
    /// engine bit for bit. `Some(d)` arms a cancellable idle timer per
    /// connection, re-armed on every relayed segment — the mass
    /// schedule/cancel churn the timing wheel absorbs at O(1), and the home
    /// future retransmission/keepalive timers will share.
    pub idle_timeout: Option<SimDuration>,
    /// Which congestion controller paces loss recovery on faulty networks
    /// (see [`mop_tcpstack::RecoveryState`]). Consulted only when the
    /// simulated network can inject data-path faults; on clean networks no
    /// recovery state exists at all, so the choice is free.
    pub congestion: CongestionAlgo,
    /// Upper bound on how many same-timestamp TUN packets the event loop
    /// coalesces into one slab batch, and the burst length over which the
    /// saturating MainWorker amortises its per-packet cost. Batch boundaries
    /// never reorder events (only *consecutive equal-timestamp* batches are
    /// merged), so under [`WorkerModel::Unbounded`] every batch size produces
    /// bit-identical results; under [`WorkerModel::Saturating`] a size of 1
    /// reproduces the unbatched engine exactly.
    pub batch_size: usize,
    /// Width of one analytics epoch for the windowed time-series sink.
    ///
    /// `None` (the default) disables windowed aggregation entirely:
    /// `RunReport::windows` stays `None` and the fleet digest is bit-for-bit
    /// what it was before windows existed. `Some(w)` makes the measurement
    /// sink stamp every sample into the
    /// [`mop_measure::WindowedAggregateStore`] epoch containing its virtual
    /// timestamp (in addition to the flat aggregates), giving longitudinal
    /// runs their per-epoch time series.
    pub epoch_width: Option<SimDuration>,
    /// How many epochs stay live in the windowed sink's ring before folding
    /// into its tail (ignored while `epoch_width` is `None`). Memory is
    /// O(`epoch_window` × cells) whatever the run length.
    pub epoch_window: usize,
}

/// The default event-count safety valve (single-device scale).
pub const DEFAULT_MAX_EVENTS: u64 = 5_000_000;

/// The default number of live epochs in the windowed sink's ring (see
/// [`MopEyeConfig::epoch_window`]): enough to keep a full simulated day of
/// hour-scale epochs live for the epoch table.
pub const DEFAULT_EPOCH_WINDOW: usize = 32;

/// The default TUN batch size. Swept in `benches/batch_sweep.rs`: per-packet
/// cost is essentially flat from 16 up, so 32 leaves headroom without
/// inflating slab residency.
pub const DEFAULT_BATCH_SIZE: usize = 32;

impl Default for MopEyeConfig {
    fn default() -> Self {
        Self::mopeye()
    }
}

impl MopEyeConfig {
    /// The configuration the released MopEye app uses: blocking tunnel reads,
    /// queued writes with `newPut`, lazy mapping, `addDisallowedApplication`,
    /// blocking connect-thread timestamps at nanosecond granularity, and no
    /// content inspection.
    pub fn mopeye() -> Self {
        Self {
            read_strategy: ReadStrategy::mopeye(),
            write_scheme: WriteScheme::Queue,
            enqueue_scheme: EnqueueScheme::NewPut,
            mapping: MappingStrategy::Lazy,
            protect: ProtectMode::DisallowedApplication,
            timestamp_mode: TimestampMode::BlockingConnectThread,
            clock: ClockGranularity::Nanosecond,
            content_inspection: false,
            seed: 0x4d6f_7045,
            discipline: EngineDiscipline::SharedDevice,
            worker: WorkerModel::Unbounded,
            max_events: DEFAULT_MAX_EVENTS,
            retain_samples: true,
            scheduler: SchedulerKind::Wheel,
            wheel_granularity: DEFAULT_GRANULARITY,
            idle_timeout: None,
            congestion: CongestionAlgo::Reno,
            batch_size: DEFAULT_BATCH_SIZE,
            epoch_width: None,
            epoch_window: DEFAULT_EPOCH_WINDOW,
        }
    }

    /// A Haystack-like configuration: adaptive-sleep reads, direct writes,
    /// cache-based mapping, per-socket protect, and content inspection.
    pub fn haystack_like() -> Self {
        Self {
            read_strategy: ReadStrategy::haystack(),
            write_scheme: WriteScheme::Direct,
            enqueue_scheme: EnqueueScheme::OldPut,
            mapping: MappingStrategy::Cached,
            protect: ProtectMode::PerSocket,
            timestamp_mode: TimestampMode::SelectorNotification,
            clock: ClockGranularity::Millisecond,
            content_inspection: true,
            seed: 0x4861_7973,
            discipline: EngineDiscipline::SharedDevice,
            worker: WorkerModel::Unbounded,
            max_events: DEFAULT_MAX_EVENTS,
            retain_samples: true,
            scheduler: SchedulerKind::Wheel,
            wheel_granularity: DEFAULT_GRANULARITY,
            idle_timeout: None,
            congestion: CongestionAlgo::Reno,
            batch_size: DEFAULT_BATCH_SIZE,
            epoch_width: None,
            epoch_window: DEFAULT_EPOCH_WINDOW,
        }
    }

    /// A naive first-implementation configuration: ToyVpn-style 100 ms sleep
    /// reads, direct writes, eager mapping, per-socket protect.
    pub fn naive() -> Self {
        Self {
            read_strategy: ReadStrategy::toyvpn(),
            write_scheme: WriteScheme::Direct,
            enqueue_scheme: EnqueueScheme::OldPut,
            mapping: MappingStrategy::Eager,
            protect: ProtectMode::PerSocket,
            timestamp_mode: TimestampMode::SelectorNotification,
            clock: ClockGranularity::Nanosecond,
            content_inspection: false,
            seed: 0x546f_7956,
            discipline: EngineDiscipline::SharedDevice,
            worker: WorkerModel::Unbounded,
            max_events: DEFAULT_MAX_EVENTS,
            retain_samples: true,
            scheduler: SchedulerKind::Wheel,
            wheel_granularity: DEFAULT_GRANULARITY,
            idle_timeout: None,
            congestion: CongestionAlgo::Reno,
            batch_size: DEFAULT_BATCH_SIZE,
            epoch_width: None,
            epoch_window: DEFAULT_EPOCH_WINDOW,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the read strategy.
    pub fn with_read_strategy(mut self, strategy: ReadStrategy) -> Self {
        self.read_strategy = strategy;
        self
    }

    /// Sets the write and enqueue schemes.
    pub fn with_write(mut self, write: WriteScheme, enqueue: EnqueueScheme) -> Self {
        self.write_scheme = write;
        self.enqueue_scheme = enqueue;
        self
    }

    /// Sets the mapping strategy.
    pub fn with_mapping(mut self, mapping: MappingStrategy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the timestamp mode.
    pub fn with_timestamp_mode(mut self, mode: TimestampMode) -> Self {
        self.timestamp_mode = mode;
        self
    }

    /// Sets the protect mode.
    pub fn with_protect(mut self, protect: ProtectMode) -> Self {
        self.protect = protect;
        self
    }

    /// Sets the state-keying discipline.
    pub fn with_discipline(mut self, discipline: EngineDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Sets the MainWorker capacity model.
    pub fn with_worker(mut self, worker: WorkerModel) -> Self {
        self.worker = worker;
        self
    }

    /// Sets the event-count safety valve.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Sets whether the report retains the raw sample vector (see
    /// [`MopEyeConfig::retain_samples`]).
    pub fn with_retain_samples(mut self, retain: bool) -> Self {
        self.retain_samples = retain;
        self
    }

    /// Sets the event-loop scheduler backend.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the timing-wheel tick granularity (see
    /// [`MopEyeConfig::wheel_granularity`]).
    pub fn with_wheel_granularity(mut self, granularity: SimDuration) -> Self {
        self.wheel_granularity = granularity;
        self
    }

    /// Sets (or clears) the per-connection idle timeout (see
    /// [`MopEyeConfig::idle_timeout`]).
    pub fn with_idle_timeout(mut self, timeout: Option<SimDuration>) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the congestion controller used for loss recovery (see
    /// [`MopEyeConfig::congestion`]).
    pub fn with_congestion(mut self, congestion: CongestionAlgo) -> Self {
        self.congestion = congestion;
        self
    }

    /// Sets the TUN batch size (see [`MopEyeConfig::batch_size`]). Clamped to
    /// at least 1.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets (or clears) the analytics epoch width (see
    /// [`MopEyeConfig::epoch_width`]).
    pub fn with_epoch_width(mut self, width: Option<SimDuration>) -> Self {
        self.epoch_width = width;
        self
    }

    /// Sets the windowed sink's live-epoch ring length (see
    /// [`MopEyeConfig::epoch_window`]). Clamped to at least 1.
    pub fn with_epoch_window(mut self, window: usize) -> Self {
        self.epoch_window = window.max(1);
        self
    }

    /// The configuration one shard of a fleet engine runs: the released
    /// MopEye behaviour with flow-keyed state, so a run's merged results are
    /// independent of the shard count.
    pub fn fleet_shard() -> Self {
        Self::mopeye().with_discipline(EngineDiscipline::FlowKeyed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_documented_ways() {
        let mop = MopEyeConfig::mopeye();
        let hay = MopEyeConfig::haystack_like();
        let naive = MopEyeConfig::naive();
        assert_eq!(mop.read_strategy, ReadStrategy::mopeye());
        assert_eq!(mop.write_scheme, WriteScheme::Queue);
        assert_eq!(mop.mapping, MappingStrategy::Lazy);
        assert!(!mop.content_inspection);
        assert_eq!(hay.mapping, MappingStrategy::Cached);
        assert!(hay.content_inspection);
        assert_eq!(hay.protect, ProtectMode::PerSocket);
        assert_eq!(naive.read_strategy, ReadStrategy::toyvpn());
        assert_eq!(naive.mapping, MappingStrategy::Eager);
        assert_eq!(MopEyeConfig::default(), mop);
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = MopEyeConfig::mopeye()
            .with_seed(99)
            .with_read_strategy(ReadStrategy::privacyguard())
            .with_write(WriteScheme::Direct, EnqueueScheme::OldPut)
            .with_mapping(MappingStrategy::Eager)
            .with_timestamp_mode(TimestampMode::SelectorNotification)
            .with_protect(ProtectMode::PerSocket);
        assert_eq!(c.seed, 99);
        assert_eq!(c.read_strategy, ReadStrategy::privacyguard());
        assert_eq!(c.write_scheme, WriteScheme::Direct);
        assert_eq!(c.enqueue_scheme, EnqueueScheme::OldPut);
        assert_eq!(c.mapping, MappingStrategy::Eager);
        assert_eq!(c.timestamp_mode, TimestampMode::SelectorNotification);
        assert_eq!(c.protect, ProtectMode::PerSocket);
    }
}
