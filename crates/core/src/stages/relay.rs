//! The relay stage: TCP/UDP/DNS state-machine dispatch.
//!
//! This is the MainWorker's decision core (§2.3, §3.2–3.4 of the paper):
//! each parsed packet view drives the per-connection user-space TCP state
//! machine or UDP association, external connects run in (modelled) blocking
//! socket-connect threads that take the RTT timestamps, the lazy mapper
//! attributes flows to apps off the packet path, and DNS queries are
//! relayed and measured in temporary blocking threads. Outbound packets are
//! handed to the egress stage's TunWriter lanes; finished measurements are
//! folded into the sink.
//!
//! The stage also owns the per-connection *timers*: when the engine runs
//! with an idle timeout, every relayed segment re-arms a cancellable timer
//! on the scheduler (O(1) schedule + cancel on the timing wheel), and a
//! timer that actually fires reaps the silent connection.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use mop_packet::{
    DnsMessage, Endpoint, FourTuple, Packet, PacketBuilder, PacketView, SackBlocks, TransportView,
};
use mop_procnet::{
    CachedMapper, ConnectionTable, EagerMapper, LazyMapper, MappingStats, MappingStrategy,
    PackageManager, SocketStateCode,
};
use mop_simnet::{
    Selector, SimDuration, SimTime, SocketId, SocketMode, SocketSet, SocketState, TimerHandle,
    TimerScheduler,
};
use mop_tcpstack::{ClientRegistry, RecoveryState, RelayAction, SegmentVerdict, UdpRegistry};

use super::{EgressStage, EngineShared, SinkStage, Stage, StageBatch, StageLinks};
use crate::config::{EngineDiscipline, ProtectMode, TimestampMode};
use crate::engine::Event;
use crate::stats::{RelayStats, RttSample, SampleKind};

/// Salt for the throwaway streams that absorb variable-draw-count work
/// (packet-to-app mapping walks the whole connection table, whose size
/// depends on co-resident flows; those draws must not advance a flow's main
/// stream or the stream would become partition-dependent).
const MAPPING_KEY_SALT: u64 = 0x6d61_705f_6b65_7973; // "map_keys"

/// The configured packet-to-app mapper.
pub(crate) enum Mapper {
    /// Parse `/proc/net` on every packet.
    Eager(EagerMapper),
    /// Parse on miss, serve repeats from a cache.
    Cached(CachedMapper),
    /// MopEye's choice: map once per connection, off the packet path.
    Lazy(LazyMapper),
}

impl std::fmt::Debug for Mapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mapper::Eager(_) => write!(f, "Mapper::Eager"),
            Mapper::Cached(_) => write!(f, "Mapper::Cached"),
            Mapper::Lazy(_) => write!(f, "Mapper::Lazy"),
        }
    }
}

impl Mapper {
    pub(crate) fn stats(&self) -> MappingStats {
        match self {
            Mapper::Eager(m) => m.stats().clone(),
            Mapper::Cached(m) => m.stats().clone(),
            Mapper::Lazy(m) => m.stats().clone(),
        }
    }
}

/// The TCP/UDP/DNS dispatch stage. See the [module docs](self).
#[derive(Debug)]
pub struct RelayStage {
    /// The cached TCP client list (state machines + timer tokens).
    pub(crate) clients: ClientRegistry,
    /// UDP associations and DNS transaction tracking.
    pub(crate) udp: UdpRegistry,
    /// The shard's `/proc/net` view.
    pub(crate) conn_table: ConnectionTable,
    /// UID → package resolution.
    pub(crate) packages: PackageManager,
    /// The configured packet-to-app mapper.
    pub(crate) mapper: Mapper,
    /// External sockets (the regular-socket side of the splice).
    pub(crate) sockets: SocketSet,
    /// The selector the MainWorker blocks on.
    pub(crate) selector: Selector,
    /// Relay counters.
    pub(crate) stats: RelayStats,
    /// External socket of each flow.
    pub(crate) socket_by_flow: HashMap<FourTuple, SocketId>,
    /// Pre-`connect()` timestamps, pending until the connect completes.
    pub(crate) connect_pre_ts: HashMap<FourTuple, SimTime>,
    /// Flows whose half-close waits for the read side to drain.
    pub(crate) pending_half_close: HashSet<FourTuple>,
    /// Destination-address → domain hints (from specs and DNS answers).
    pub(crate) ip_to_domain: HashMap<IpAddr, String>,
    /// In-flight DNS measurements: send timestamp and queried name.
    pub(crate) dns_pending: HashMap<FourTuple, (SimTime, String)>,
    /// When each flow was registered (lazy-mapping bookkeeping).
    pub(crate) flow_registered_at: HashMap<FourTuple, SimTime>,
    /// Reusable scratch for outbound packet batches headed to egress, so the
    /// steady-state segment loop allocates nothing.
    outbound_scratch: Vec<(SimTime, Packet)>,
    /// Reusable scratch for sample batches headed to the sink.
    sample_scratch: Vec<RttSample>,
}

impl Stage for RelayStage {
    fn name(&self) -> &'static str {
        "relay"
    }

    fn reserve_flows(&mut self, flows: usize) {
        self.flow_registered_at.reserve(flows);
        self.socket_by_flow.reserve(flows);
    }

    /// An outbound batch passes through the relay on its way to egress: the
    /// relay owns the connect-thread census (tunnel-write contention,
    /// §3.5.1), so it stamps the batch's flag and hands the batch to the
    /// egress link.
    fn process_batch(&mut self, links: &mut StageLinks<'_>, batch: &mut StageBatch) {
        let StageBatch::Outbound { connect_threads_active, .. } = batch else { return };
        *connect_threads_active = !self.connect_pre_ts.is_empty();
        let Some(egress) = links.egress.take() else { return };
        egress.process_batch(links, batch);
    }
}

impl RelayStage {
    /// Creates the stage for the given mapping strategy and protect mode.
    pub fn new(mapping: MappingStrategy, protect: ProtectMode) -> Self {
        let mut sockets = SocketSet::new();
        if protect == ProtectMode::DisallowedApplication {
            sockets.set_disallowed_application(true);
        }
        let mapper = match mapping {
            MappingStrategy::Eager => Mapper::Eager(EagerMapper::new()),
            MappingStrategy::Cached => Mapper::Cached(CachedMapper::new()),
            MappingStrategy::Lazy => Mapper::Lazy(LazyMapper::new()),
        };
        Self {
            clients: ClientRegistry::new(),
            udp: UdpRegistry::new(),
            conn_table: ConnectionTable::new(),
            packages: PackageManager::new(),
            mapper,
            sockets,
            selector: Selector::new(),
            stats: RelayStats::default(),
            socket_by_flow: HashMap::new(),
            connect_pre_ts: HashMap::new(),
            pending_half_close: HashSet::new(),
            ip_to_domain: HashMap::new(),
            dns_pending: HashMap::new(),
            flow_registered_at: HashMap::new(),
            outbound_scratch: Vec::new(),
            sample_scratch: Vec::new(),
        }
    }

    /// Resets the stage to its just-constructed state, keeping the table,
    /// pool and scratch allocations. The mapper is rebuilt fresh for the same
    /// strategy (mappers are a couple of empty tables); the socket set keeps
    /// its protect-mode configuration and pooled read buffers.
    pub(crate) fn reset(&mut self) {
        self.clients.reset();
        self.udp.reset();
        self.conn_table.reset();
        self.packages.reset();
        self.mapper = match &self.mapper {
            Mapper::Eager(_) => Mapper::Eager(EagerMapper::new()),
            Mapper::Cached(_) => Mapper::Cached(CachedMapper::new()),
            Mapper::Lazy(_) => Mapper::Lazy(LazyMapper::new()),
        };
        self.sockets.reset();
        self.selector.reset();
        self.stats = RelayStats::default();
        self.socket_by_flow.clear();
        self.connect_pre_ts.clear();
        self.pending_half_close.clear();
        self.ip_to_domain.clear();
        self.dns_pending.clear();
        self.flow_registered_at.clear();
        self.outbound_scratch.clear();
        self.sample_scratch.clear();
    }

    /// Routes a burst of outbound packets to egress through the batch path
    /// (via the relay's own [`Stage::process_batch`], which stamps the
    /// connect-thread flag), then reclaims the scratch vector.
    fn emit_outbound(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        packets: Vec<(SimTime, Packet)>,
    ) {
        let mut batch = StageBatch::Outbound { packets, connect_threads_active: false };
        let mut links =
            StageLinks { shared: sh, sched, relay: None, egress: Some(egress), sink: None };
        self.process_batch(&mut links, &mut batch);
        if let StageBatch::Outbound { mut packets, .. } = batch {
            packets.clear();
            self.outbound_scratch = packets;
        }
    }

    /// Routes one finished measurement to the sink through the batch path,
    /// then reclaims the scratch vector.
    fn emit_sample(
        &mut self,
        sh: &mut EngineShared,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        sample: RttSample,
    ) {
        let mut samples = std::mem::take(&mut self.sample_scratch);
        samples.push(sample);
        let mut batch = StageBatch::Samples(samples);
        let mut links = StageLinks { shared: sh, sched, relay: None, egress: None, sink: None };
        sink.process_batch(&mut links, &mut batch);
        if let StageBatch::Samples(samples) = batch {
            // The sink drained the batch; keep the allocation for next time.
            self.sample_scratch = samples;
        }
    }

    /// The MainWorker's relay decision, working entirely on borrowed views —
    /// no payload is copied unless data actually has to cross to the socket
    /// channel.
    pub(crate) fn on_packet(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        packet: &PacketView<'_>,
    ) {
        if matches!(packet.transport(), TransportView::Other(..)) {
            // A well-formed packet of an unsupported transport: forwarded
            // opaquely, nothing to measure and nothing to count as an error.
            return;
        }
        let Some(flow) = packet.four_tuple() else {
            self.stats.parse_errors += 1;
            return;
        };
        match packet.transport() {
            TransportView::Tcp(segment) => {
                let client = self.clients.get_or_create(flow);
                let (packets, actions, verdict) =
                    client.machine_mut().on_tunnel_segment_view(segment);
                match verdict {
                    SegmentVerdict::Syn => self.stats.syns += 1,
                    SegmentVerdict::Data(len) => {
                        self.stats.data_segments_out += 1;
                        self.stats.bytes_out += len as u64;
                    }
                    SegmentVerdict::PureAckDiscarded => self.stats.pure_acks_discarded += 1,
                    SegmentVerdict::Fin => self.stats.fins += 1,
                    SegmentVerdict::Rst => self.stats.rsts += 1,
                    SegmentVerdict::Retransmission | SegmentVerdict::OutOfState => {}
                }
                // Discarded pure ACKs still drive loss recovery: the app's
                // cumulative ACK (and any SACK blocks) advance the sender
                // scoreboard and can trigger a fast retransmit. On networks
                // that cannot fault, no recovery state exists and this is a
                // single `None` check.
                if matches!(verdict, SegmentVerdict::PureAckDiscarded) {
                    self.on_recovery_ack(
                        sh,
                        egress,
                        sched,
                        now,
                        flow,
                        segment.ack(),
                        segment.sack_blocks(),
                    );
                }
                for pkt in packets {
                    self.write_out(sh, egress, sched, now, pkt);
                }
                for action in actions {
                    self.apply_action(sh, egress, sink, sched, now, flow, action);
                }
                // A torn-down connection's tail (the app's final ACK after
                // RemoveClient already ran) lands on a freshly created
                // machine and is discarded; the machine is still in Listen
                // because only a SYN moves it off. Drop that zombie client
                // and the keyed state the tail packet recreated, so a fleet
                // run's memory tracks live connections. (Flow-keyed only:
                // the single-device engine keeps its historical behaviour
                // bit-for-bit.)
                if sh.config.discipline == EngineDiscipline::FlowKeyed
                    && self
                        .clients
                        .get(flow)
                        .is_some_and(|c| c.state() == mop_tcpstack::TcpState::Listen)
                {
                    self.disarm_timers(sched, flow);
                    self.clients.remove(flow);
                    self.release_flow_state(sh, egress, flow);
                }
                // Every relayed segment is activity: re-arm the connection's
                // cancellable idle timer (a no-op unless configured).
                self.rearm_idle(sh, sched, now, flow);
                self.update_memory_ledger(sh);
            }
            TransportView::Udp(datagram) => {
                self.stats.udp_datagrams += 1;
                let assoc = self.udp.get_or_create(flow);
                let transaction = assoc.on_outgoing(datagram.payload(), now.as_nanos()).cloned();
                if let Some(tx) = transaction {
                    self.stats.dns_queries += 1;
                    self.start_dns_measurement(sh, sink, sched, now, flow, &tx);
                }
            }
            TransportView::Other(..) => unreachable!("handled before the four-tuple guard"),
        }
    }

    /// Routes one outbound packet to the egress stage.
    fn write_out(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        packet: Packet,
    ) {
        let connect_threads_active = !self.connect_pre_ts.is_empty();
        egress.write_to_tunnel(sh, sched, now, packet, connect_threads_active);
    }

    // One parameter per downstream stage the action can touch; grouping them
    // would only obscure which stage a call reaches.
    #[allow(clippy::too_many_arguments)]
    fn apply_action(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
        action: RelayAction,
    ) {
        match action {
            RelayAction::ConnectExternal { dst } => self.start_connect(sh, sched, now, flow, dst),
            RelayAction::RelayData { bytes } => {
                self.relay_data(sh, egress, sched, now, flow, &bytes)
            }
            RelayAction::HalfCloseExternal => self.half_close(sh, egress, sched, now, flow),
            RelayAction::CloseExternal => self.close_external(flow),
            RelayAction::RemoveClient => self.remove_client(sh, egress, sink, sched, now, flow),
        }
    }

    /// The socket-connect thread (§2.4): blocking connect with clean
    /// timestamps, then lazy mapping and selector registration.
    fn start_connect(
        &mut self,
        sh: &mut EngineShared,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
        dst: Endpoint,
    ) {
        let mut rng = sh.checkout_rng(flow);
        let spawn = sh.cost.thread_spawn.sample(&mut rng);
        sh.ledger.charge("ConnectThreads", spawn);
        let mut t = now + spawn;
        if sh.config.protect == ProtectMode::PerSocket {
            let protect = sh.cost.protect_call.sample(&mut rng);
            sh.ledger.charge("ConnectThreads", protect);
            t += protect;
        }
        sh.checkin_rng(flow, rng);
        // Flow-keyed runs bind the external socket to the app flow's source,
        // so the external four-tuple (which keys the network's per-flow RNG
        // stream and the wire tap) is a pure function of the flow rather
        // than of socket-creation order.
        let socket = match sh.config.discipline {
            EngineDiscipline::SharedDevice => self.sockets.create(SocketMode::Blocking),
            EngineDiscipline::FlowKeyed => self.sockets.create_bound(SocketMode::Blocking, flow.src),
        };
        if sh.config.protect == ProtectMode::PerSocket {
            self.sockets.protect(socket);
        }
        // Pre-connect timestamp, taken immediately before connect() (§4.1.1).
        self.connect_pre_ts.insert(flow, sh.timestamp(t));
        let outcome = self.sockets.connect(&mut sh.net, socket, dst, t);
        self.socket_by_flow.insert(flow, socket);
        if let Some(client) = self.clients.get_mut(flow) {
            client.attach_external(
                socket.to_string().trim_start_matches("sock#").parse().unwrap_or(0),
            );
            client.connect_started_ns = Some(t.as_nanos());
        }
        sched.schedule(outcome.completed_at, Event::ExternalConnected(flow));
    }

    /// The external connect for `flow` completed (successfully or not):
    /// take the post-connect timestamp, map the flow to its app, record the
    /// RTT sample at the sink, and finish the app-side handshake.
    pub(crate) fn on_external_connected(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        let state = self.sockets.poll_connect(socket, now);
        let pre = self.connect_pre_ts.remove(&flow).unwrap_or(now);
        let mut rng = sh.checkout_rng(flow);
        // Post-connect timestamp: exact in the blocking connect thread, or
        // delayed by the selector dispatch when taken from the event loop.
        let mut post = now;
        if sh.config.timestamp_mode == TimestampMode::SelectorNotification {
            post += sh.cost.sample_dispatch_delay(&mut rng);
        }
        let post = sh.timestamp(post);
        let outcome = self.sockets.connect_outcome(socket);
        match state {
            SocketState::Connected => {
                self.stats.connects_ok += 1;
                // Register the channel with the selector only after the
                // internal handshake work is done (§3.4). The cost is drawn
                // from the flow's stream before the mapper runs, because the
                // mapper's draw count depends on the co-resident connection
                // table and must not advance this stream.
                let register = sh.cost.selector_register.sample(&mut rng);
                sh.checkin_rng(flow, rng);
                // Lazy mapping happens here, in the connect thread, after the
                // handshake with the server is complete (§3.3).
                let (uid, package) = self.map_flow(sh, flow, now);
                if let Some(client) = self.clients.get_mut(flow) {
                    client.connect_finished_ns = Some(now.as_nanos());
                    client.app_uid = uid;
                    client.app_package = package.clone();
                    // Only networks that can fault the data path get recovery
                    // state; clean runs carry no sender scoreboard, draw no
                    // randomness and arm no retransmission timers. The
                    // measured connect RTT seeds the RFC 6298 estimator.
                    if sh.net.faults_possible() {
                        client.recovery = Some(RecoveryState::new(
                            sh.config.congestion,
                            client.connect_duration_ns(),
                        ));
                    }
                }
                sh.ledger.charge("ConnectThreads", register);
                self.selector.register(socket);
                self.sockets.set_mode(socket, SocketMode::NonBlocking);
                self.conn_table.set_state(flow, SocketStateCode::Established);
                // Record the per-app RTT sample.
                let tcpdump_ms = self
                    .sockets
                    .flow(socket)
                    .and_then(|f| sh.net.tap().handshake_rtt(f))
                    .map(|d| d.as_millis_f64());
                let sample = RttSample {
                    kind: SampleKind::Tcp,
                    flow,
                    uid,
                    package,
                    domain: self.domain_for(sh, flow.dst.addr),
                    measured_ms: (post - pre).as_millis_f64(),
                    true_ms: outcome.map(|o| o.true_rtt.as_millis_f64()).unwrap_or(0.0),
                    tcpdump_ms,
                    at: now,
                };
                self.emit_sample(sh, sink, sched, sample);
                // Complete the handshake with the app (§2.3).
                if let Some(client) = self.clients.get_mut(flow) {
                    let packets = client.machine_mut().on_external_connected();
                    for pkt in packets {
                        self.write_out(sh, egress, sched, now, pkt);
                    }
                }
            }
            SocketState::ConnectFailed { refused } => {
                sh.checkin_rng(flow, rng);
                self.stats.connects_failed += 1;
                if let Some(client) = self.clients.get_mut(flow) {
                    let packets = client.machine_mut().on_external_connect_failed(refused);
                    for pkt in packets {
                        self.write_out(sh, egress, sched, now, pkt);
                    }
                }
                sink.finish_flow(flow, now, false);
            }
            _ => sh.checkin_rng(flow, rng),
        }
    }

    fn map_flow(
        &mut self,
        sh: &mut EngineShared,
        flow: FourTuple,
        now: SimTime,
    ) -> (Option<u32>, Option<String>) {
        let registered_at = self.flow_registered_at.get(&flow).copied().unwrap_or(now);
        // The mapper's draw count scales with the connection table (a
        // `/proc/net` parse samples a cost per entry), and the table holds
        // whatever flows happen to be co-resident. Under the flow-keyed
        // discipline those draws come from a throwaway stream derived for
        // this flow, so they cannot perturb any flow's main stream; only the
        // CPU ledger sees the variance.
        let mut keyed_rng;
        let rng: &mut mop_simnet::SimRng = match sh.config.discipline {
            EngineDiscipline::SharedDevice => &mut sh.rng,
            EngineDiscipline::FlowKeyed => {
                keyed_rng = mop_simnet::SimRng::seed_from_u64(
                    sh.config.seed ^ flow.canonical().stable_hash() ^ MAPPING_KEY_SALT,
                );
                &mut keyed_rng
            }
        };
        let outcome = match &mut self.mapper {
            Mapper::Eager(m) => m.map(&self.conn_table, &sh.cost, rng, flow),
            Mapper::Cached(m) => m.map(&self.conn_table, &sh.cost, rng, flow),
            Mapper::Lazy(m) => m.map(&self.conn_table, &sh.cost, rng, flow, registered_at, now),
        };
        let lookup_cost = outcome
            .uid
            .map(|_| SimDuration::from_millis_f64(sh.cost.package_lookup.sample_ms(rng)));
        let charge_to = match sh.config.mapping {
            MappingStrategy::Lazy => "ConnectThreads",
            _ => "MainWorker",
        };
        sh.ledger.charge(charge_to, outcome.cpu_cost);
        let package = outcome.uid.and_then(|uid| {
            sh.ledger.charge(charge_to, lookup_cost.unwrap_or(SimDuration::ZERO));
            self.packages.name_for_uid_cached(uid)
        });
        (outcome.uid, package)
    }

    fn relay_data(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
        bytes: &[u8],
    ) {
        if sh.config.content_inspection {
            let mut rng = sh.checkout_rng(flow);
            let inspect = sh.cost.sample_content_inspection(bytes.len(), &mut rng);
            sh.checkin_rng(flow, rng);
            sh.ledger.charge("Inspection", inspect);
        }
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        if !matches!(self.sockets.state(socket), SocketState::Connected | SocketState::HalfClosed)
        {
            return;
        }
        self.sockets.buffer_write(socket, bytes.len());
        self.sockets.flush_writes(&mut sh.net, socket, now);
        // The socket write completes locally; acknowledge the app's data.
        if let Some(client) = self.clients.get_mut(flow) {
            let packets = client.machine_mut().on_external_write_complete();
            for pkt in packets {
                self.write_out(sh, egress, sched, now, pkt);
            }
        }
        if let Some(ready_at) = self.sockets.next_read_ready_at(socket) {
            sched.schedule(ready_at.max(now), Event::SocketReadable(flow));
        }
    }

    /// Response data became readable on the external socket: read it from
    /// the pooled buffer, segment it towards the app, and keep the read loop
    /// scheduled.
    pub(crate) fn on_socket_readable(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        // The socket layer hands out a pooled buffer for the readable bytes,
        // so the read loop performs no per-read allocation in steady state.
        let data = self.sockets.take_readable_pooled(socket, now);
        let total = data.len();
        if total > 0 {
            let mut rng = sh.checkout_rng(flow);
            if sh.config.content_inspection {
                let inspect = sh.cost.sample_content_inspection(total, &mut rng);
                sh.ledger.charge("Inspection", inspect);
            }
            let segment_cost = SimDuration::from_micros(rng.int_inclusive(10, 60));
            sh.checkin_rng(flow, rng);
            // Segmenting server data back towards the app is MainWorker
            // work: under the saturating model it queues behind the backlog
            // and, when backlogged, amortises across the burst.
            let start = sh.worker_step(now, segment_cost);
            let mut arm_rto = None;
            if let Some(client) = self.clients.get_mut(flow) {
                let packets = client.machine_mut().on_external_data(&data);
                // On fault-capable networks, register every payload-bearing
                // segment with the sender scoreboard before it leaves: the
                // retransmission timer must cover data from the moment it is
                // handed to egress, not from when a loss is noticed.
                if let Some(recovery) = client.recovery.as_mut() {
                    for pkt in &packets {
                        if let Some(tcp) = pkt.tcp() {
                            if !tcp.payload.is_empty() {
                                recovery.on_data_sent(tcp.seq, &tcp.payload, start.as_nanos());
                            }
                        }
                    }
                    if recovery.has_inflight() && client.timers.rto().is_none() {
                        arm_rto = Some(recovery.rto_ns());
                    }
                }
                self.stats.data_segments_in += packets.len() as u64;
                self.stats.bytes_in += total as u64;
                let mut scratch = std::mem::take(&mut self.outbound_scratch);
                scratch.extend(packets.into_iter().map(|pkt| (start, pkt)));
                self.emit_outbound(sh, egress, sched, scratch);
            }
            if let Some(rto_ns) = arm_rto {
                self.arm_rto_at(sched, flow, start + SimDuration::from_nanos(rto_ns));
            }
        }
        self.sockets.recycle_buffer(data);
        if let Some(next) = self.sockets.next_read_ready_at(socket) {
            sched.schedule(next, Event::SocketReadable(flow));
        } else if self.pending_half_close.contains(&flow) {
            self.finish_half_close(sh, egress, sched, now, flow);
        }
    }

    fn half_close(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        self.sockets.half_close(socket);
        if self.sockets.read_exhausted(socket) {
            self.finish_half_close(sh, egress, sched, now, flow);
        } else {
            self.pending_half_close.insert(flow);
        }
    }

    /// The half-close write event: close the external connection and send a
    /// FIN to the app (§2.3, socket-write handling).
    fn finish_half_close(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        self.pending_half_close.remove(&flow);
        if let Some(&socket) = self.socket_by_flow.get(&flow) {
            self.sockets.close(socket);
            self.selector.deregister(socket);
        }
        if let Some(client) = self.clients.get_mut(flow) {
            let packets = client.machine_mut().on_external_closed(false);
            for pkt in packets {
                self.write_out(sh, egress, sched, now, pkt);
            }
        }
    }

    fn close_external(&mut self, flow: FourTuple) {
        if let Some(&socket) = self.socket_by_flow.get(&flow) {
            self.sockets.close(socket);
            self.selector.deregister(socket);
        }
        self.conn_table.remove(flow);
    }

    fn remove_client(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        self.disarm_timers(sched, flow);
        self.clients.remove(flow);
        self.conn_table.remove(flow);
        sink.finish_flow(flow, now, true);
        self.release_flow_state(sh, egress, flow);
        self.update_memory_ledger(sh);
    }

    /// Evicts a finished flow's keyed stochastic state (RNG stream, writer
    /// lane, network context), so shard memory is bounded by *concurrent*
    /// flows, not by every flow a fleet run has ever seen.
    ///
    /// Safe for determinism: if a stray late packet recreates the state, the
    /// fresh stream restarts from the flow's seed — still a pure function of
    /// `(seed, four-tuple)`, so every shard count recreates it identically.
    fn release_flow_state(&mut self, sh: &mut EngineShared, egress: &mut EgressStage, flow: FourTuple) {
        if sh.config.discipline == EngineDiscipline::FlowKeyed {
            let key = flow.canonical();
            sh.flow_rngs.remove(&key);
            egress.release_lane(key);
            sh.net.release_flow(flow);
        }
    }

    // ----- per-connection timers ------------------------------------------

    /// Re-arms `flow`'s cancellable idle timer: O(1) cancel of the
    /// superseded timer plus O(1) schedule of the new deadline. A no-op
    /// unless the engine runs with an idle timeout.
    ///
    /// Only *live* connections carry a timer: a machine still in `Listen`
    /// (a zombie recreated by a torn-down connection's tail ACK) or in a
    /// terminal state is not mid-life relay work, so arming it would both
    /// waste a timer and risk a late fire flipping a completed flow's
    /// outcome.
    fn rearm_idle(
        &mut self,
        sh: &EngineShared,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        let Some(timeout) = sh.config.idle_timeout else { return };
        let Some(client) = self.clients.get_mut(flow) else { return };
        let state = client.state();
        if state == mop_tcpstack::TcpState::Listen || state.is_terminal() {
            if let Some(token) = client.timers.disarm_idle() {
                sched.cancel(TimerHandle::from_token(token));
            }
            return;
        }
        let handle = sched.schedule(now + timeout, Event::IdleTimeout(flow));
        if let Some(superseded) = client.timers.arm_idle(handle.token()) {
            sched.cancel(TimerHandle::from_token(superseded));
        }
    }

    /// Disarms (and cancels) both of `flow`'s timers, if armed. Teardown
    /// paths use this so no timer can fire into freed per-flow state.
    fn disarm_timers(&mut self, sched: &mut TimerScheduler<Event>, flow: FourTuple) {
        if let Some(client) = self.clients.get_mut(flow) {
            let tokens = [client.timers.disarm_idle(), client.timers.disarm_rto()];
            for token in tokens.into_iter().flatten() {
                sched.cancel(TimerHandle::from_token(token));
            }
        }
    }

    /// A connection's idle timer fired: the app has relayed nothing for the
    /// configured timeout, so reap the connection — close the external
    /// socket, drop the client and its keyed state, and mark the flow
    /// failed.
    pub(crate) fn on_idle_timeout(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        let Some(client) = self.clients.get_mut(flow) else { return };
        // The firing timer is the armed one; a superseded timer was
        // cancelled at re-arm and never reaches here.
        client.timers.disarm_idle();
        // Reap only mid-life connections: a zombie in `Listen` or a machine
        // in a terminal state has nothing left to relay, and flipping its
        // flow's outcome would corrupt a completed flow.
        let state = client.state();
        if state == mop_tcpstack::TcpState::Listen || state.is_terminal() {
            return;
        }
        // The reaped connection may still carry an armed retransmission
        // timer; cancel it so it cannot fire into the freed state.
        if let Some(token) = client.timers.disarm_rto() {
            sched.cancel(TimerHandle::from_token(token));
        }
        if let Some(&socket) = self.socket_by_flow.get(&flow) {
            self.sockets.close(socket);
            self.selector.deregister(socket);
        }
        self.clients.remove(flow);
        self.conn_table.remove(flow);
        sink.finish_flow(flow, now, false);
        self.release_flow_state(sh, egress, flow);
        self.stats.idle_reaped += 1;
        self.update_memory_ledger(sh);
    }

    // ----- loss recovery --------------------------------------------------

    /// (Re-)arms `flow`'s retransmission timer at `at`, cancelling any
    /// superseded deadline (O(1) on the timing wheel).
    fn arm_rto_at(&mut self, sched: &mut TimerScheduler<Event>, flow: FourTuple, at: SimTime) {
        let Some(client) = self.clients.get_mut(flow) else { return };
        let handle = sched.schedule(at, Event::RtoTimeout(flow));
        if let Some(superseded) = client.timers.arm_rto(handle.token()) {
            sched.cancel(TimerHandle::from_token(superseded));
        }
    }

    /// Feeds an app ACK (cumulative edge plus any SACK blocks) into `flow`'s
    /// sender scoreboard, emitting fast retransmits and managing the RTO
    /// deadline per RFC 6298. On clean networks no recovery state exists and
    /// this is a single `None` check.
    #[allow(clippy::too_many_arguments)]
    fn on_recovery_ack(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
        ack: u32,
        sack: Option<SackBlocks>,
    ) {
        let Some(client) = self.clients.get_mut(flow) else { return };
        let Some(recovery) = client.recovery.as_mut() else { return };
        let mut reaction = recovery.on_ack(ack, sack, now.as_nanos());
        let rto_ns = recovery.rto_ns();
        // Fast retransmits replay through the machine's immutable path — the
        // sequence space does not advance — paced by cwnd via each
        // retransmit's delay.
        let resend: Vec<(SimTime, Packet)> = reaction
            .retransmits
            .drain(..)
            .map(|r| {
                let at = now + SimDuration::from_nanos(r.delay_ns);
                (at, client.machine().retransmit_data(r.seq, r.payload))
            })
            .collect();
        if reaction.all_acked {
            // Everything in flight is acknowledged: the RTO timer dies.
            if let Some(token) = client.timers.disarm_rto() {
                sched.cancel(TimerHandle::from_token(token));
            }
        } else if reaction.advanced || reaction.fast_retransmit {
            // New progress (or a retransmit) re-bases the deadline on the
            // current, sample-updated RTO.
            let handle =
                sched.schedule(now + SimDuration::from_nanos(rto_ns), Event::RtoTimeout(flow));
            if let Some(superseded) = client.timers.arm_rto(handle.token()) {
                sched.cancel(TimerHandle::from_token(superseded));
            }
        }
        self.stats.retransmits += resend.len() as u64;
        self.stats.fast_retransmits += u64::from(reaction.fast_retransmit);
        self.stats.sacked_segments += u64::from(reaction.newly_sacked);
        if !resend.is_empty() {
            let mut scratch = std::mem::take(&mut self.outbound_scratch);
            scratch.extend(resend);
            self.emit_outbound(sh, egress, sched, scratch);
        }
    }

    /// `flow`'s retransmission timer fired with data still in flight: back
    /// off the RTO (RFC 6298 §5.5), resend the earliest unacknowledged
    /// segment, and re-arm at the doubled deadline.
    pub(crate) fn on_rto_timeout(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
    ) {
        let Some(client) = self.clients.get_mut(flow) else { return };
        // The firing timer is the armed one; a superseded timer was
        // cancelled at re-arm and never reaches here.
        client.timers.disarm_rto();
        let Some(recovery) = client.recovery.as_mut() else { return };
        let Some(rt) = recovery.on_rto(now.as_nanos()) else {
            // Raced with the final ACK: nothing left in flight.
            return;
        };
        let rto_ns = recovery.rto_ns();
        let pkt = client.machine().retransmit_data(rt.seq, rt.payload);
        let handle =
            sched.schedule(now + SimDuration::from_nanos(rto_ns), Event::RtoTimeout(flow));
        if let Some(superseded) = client.timers.arm_rto(handle.token()) {
            sched.cancel(TimerHandle::from_token(superseded));
        }
        self.stats.rto_fires += 1;
        self.stats.retransmits += 1;
        self.write_out(sh, egress, sched, now, pkt);
    }

    // ----- DNS ------------------------------------------------------------

    fn start_dns_measurement(
        &mut self,
        sh: &mut EngineShared,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
        tx: &mop_tcpstack::DnsTransaction,
    ) {
        let (id, name) = (tx.id, tx.name.as_str());
        // The whole DNS processing runs in a temporary blocking-mode thread
        // (§2.4): socket set-up, then a blocking send/receive pair.
        let mut rng = sh.checkout_rng(flow);
        let spawn = sh.cost.thread_spawn.sample(&mut rng);
        sh.checkin_rng(flow, rng);
        sh.ledger.charge("DnsThreads", spawn);
        let send_at = now + spawn;
        let outcome = sh.net.dns_lookup(flow.src, name, send_at);
        self.dns_pending.insert(flow, (sh.timestamp(send_at), name.to_string()));
        for addr in &outcome.addrs {
            self.ip_to_domain.insert(IpAddr::V4(*addr), name.to_string());
        }
        let Some(response_at) = outcome.response_at else {
            // Query lost: the app sees a timeout; nothing is measured.
            sink.finish_flow(flow, send_at, false);
            return;
        };
        // Build the response datagram the relay writes back to the app.
        let query = DnsMessage::query(id, name);
        let response = if outcome.nxdomain {
            DnsMessage::nxdomain(&query)
        } else {
            DnsMessage::answer(&query, &outcome.addrs, 300)
        };
        let to_app = PacketBuilder::new(flow.dst, flow.src).dns(&response);
        sched.schedule(response_at, Event::DnsResponse { flow, packet: to_app });
    }

    /// The DNS response for `flow` arrived: record the DNS RTT sample at the
    /// sink and relay the answer to the app.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_dns_response(
        &mut self,
        sh: &mut EngineShared,
        egress: &mut EgressStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        flow: FourTuple,
        packet: Packet,
    ) {
        let Some((sent_ts, name)) = self.dns_pending.remove(&flow) else { return };
        let post = sh.timestamp(now);
        let uid = self.conn_table.uid_of(flow);
        let package = uid.and_then(|u| self.packages.name_for_uid_cached(u));
        let tcpdump_ms = sh.net.tap().dns_rtt(flow).map(|d| d.as_millis_f64());
        let sample = RttSample {
            kind: SampleKind::Dns,
            flow,
            uid,
            package,
            domain: Some(name),
            measured_ms: (post - sent_ts).as_millis_f64(),
            true_ms: tcpdump_ms.unwrap_or_else(|| (post - sent_ts).as_millis_f64()),
            tcpdump_ms,
            at: now,
        };
        self.emit_sample(sh, sink, sched, sample);
        // Forward the answer to the app.
        self.write_out(sh, egress, sched, now, packet);
        // The DNS exchange is complete; its keyed state will not be used
        // again (the response delivery draws nothing).
        self.release_flow_state(sh, egress, flow);
    }

    // ----- misc -----------------------------------------------------------

    fn domain_for(&self, sh: &EngineShared, addr: IpAddr) -> Option<String> {
        if let Some(d) = self.ip_to_domain.get(&addr) {
            return Some(d.clone());
        }
        sh.net.server_for(addr).and_then(|s| s.domains.first().cloned())
    }

    fn update_memory_ledger(&mut self, sh: &mut EngineShared) {
        // Each live client holds a 64 KiB read and a 64 KiB write buffer
        // (§3.4); the engine itself has a fixed footprint. Content inspection
        // keeps reassembled flow buffers that dwarf the relay's own state.
        let clients = self.clients.len();
        let base = 6 * 1024 * 1024;
        let buffers = clients * 2 * 65_535;
        sh.ledger.set_memory("relay", base + buffers);
        if sh.config.content_inspection {
            sh.ledger.set_memory("inspection", 120 * 1024 * 1024 + clients * 1024 * 1024);
        }
    }
}
