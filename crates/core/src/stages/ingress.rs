//! The ingress stage: TUN retrieval and parse.
//!
//! This is the app-facing end of the pipeline. Simulated app endpoints (and
//! DNS clients) live here; when one writes a packet "into the tunnel", the
//! raw IP bytes are sealed into a pooled slab batch, the `ReaderSim` models
//! the TUN retrieval cost for the configured read strategy, and the slab is
//! scheduled to the relay stage as a `ProcessTunBatch` event (the engine
//! loop coalesces same-instant slabs into larger bursts). Packets the
//! egress stage delivers back to the apps re-enter here
//! (`DeliverToApp`), where the app endpoints consume them and emit their
//! next requests.

use std::collections::HashMap;

use mop_packet::{Endpoint, FourTuple, Packet, PacketView};
use mop_simnet::{BatchPool, SimDuration, SimTime, SlabBatch, TimerScheduler};
use mop_tun::{AppEndpoint, DnsClient, FlowKind, FlowSpec, ReaderSim};
use mop_procnet::SocketStateCode;

use super::{EngineShared, RelayStage, SinkStage, Stage, StageBatch, StageLinks};
use crate::engine::Event;

/// The TUN retrieval + parse stage. See the [module docs](self).
#[derive(Debug)]
pub struct IngressStage {
    /// The TUN read-strategy model (§3.1).
    pub(crate) reader: ReaderSim,
    /// Free list backing the tunnel slab batches: the reader seals retrieved
    /// packets into a pooled slab, the relay parses them by reference, then
    /// the slab is recycled.
    pub(crate) batches: BatchPool,
    /// The simulated app endpoints, by app-side flow.
    pub(crate) apps: HashMap<FourTuple, AppEndpoint>,
    /// The simulated DNS clients, by query flow.
    pub(crate) dns_clients: HashMap<FourTuple, DnsClient>,
    /// Sequential source-port pool (single-device flows only).
    pub(crate) next_app_port: u16,
    /// Sequential DNS transaction ids.
    pub(crate) next_dns_id: u16,
}

impl Stage for IngressStage {
    fn name(&self) -> &'static str {
        "ingress"
    }

    fn reserve_flows(&mut self, flows: usize) {
        self.apps.reserve(flows);
    }

    /// The MainWorker drains one TUN slab: each packet is parsed zero-copy
    /// straight out of the slab bytes, charged its parse cost (which, under
    /// the saturating model, amortises across the burst), and handed to the
    /// relay. Per-packet semantics — parse, RNG draws, relay decision —
    /// are identical to the old one-event-per-packet path; only the
    /// dispatch granularity changed.
    fn process_batch(&mut self, links: &mut StageLinks<'_>, batch: &mut StageBatch) {
        let StageBatch::Tun(slab) = batch else { return };
        let StageLinks { shared, sched, relay, egress, sink } = links;
        let (Some(relay), Some(egress), Some(sink)) =
            (relay.as_deref_mut(), egress.as_deref_mut(), sink.as_deref_mut())
        else {
            return;
        };
        for i in 0..slab.len() {
            let due = slab.due(i);
            shared.clock.advance_to(due);
            match PacketView::parse(slab.packet(i)) {
                Ok(packet) => {
                    let flow_key = packet.four_tuple();
                    let parse_cost = Self::parse_cost(shared, flow_key);
                    let start = shared.worker_step(due, parse_cost);
                    relay.on_packet(shared, egress, sink, sched, start, &packet);
                }
                Err(_) => relay.stats.parse_errors += 1,
            }
        }
    }
}

impl IngressStage {
    /// Creates the stage around a configured reader, with slabs pre-sized
    /// for `batch_size`-packet bursts.
    pub fn new(reader: ReaderSim, batch_size: usize) -> Self {
        Self {
            reader,
            batches: BatchPool::for_packets(batch_size),
            apps: HashMap::new(),
            dns_clients: HashMap::new(),
            next_app_port: 36_000,
            next_dns_id: 1,
        }
    }

    /// Resets the stage to its just-constructed state, keeping the slab pool
    /// and table allocations: the reader restarts its poll loop at time zero
    /// and the port/transaction-id counters rewind so a reused stage hands
    /// out the same identifiers a fresh one would.
    pub(crate) fn reset(&mut self) {
        self.reader.reset();
        self.batches.reset_stats();
        self.apps.clear();
        self.dns_clients.clear();
        self.next_app_port = 36_000;
        self.next_dns_id = 1;
    }

    fn alloc_port(&mut self) -> u16 {
        let port = self.next_app_port;
        self.next_app_port =
            if self.next_app_port >= 64_000 { 36_000 } else { self.next_app_port + 1 };
        port
    }

    /// An app opens the flow described by `spec`: create the endpoint (TCP)
    /// or DNS client, register the connection, and inject the opening packet
    /// into the tunnel.
    pub(crate) fn on_flow_start(
        &mut self,
        sh: &mut EngineShared,
        relay: &mut RelayStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        spec: FlowSpec,
    ) {
        // Fleet scenarios pre-assign the source endpoint so the four-tuple is
        // a pure function of the spec; single-device flows draw from the
        // engine's sequential port pool.
        let src = match spec.src {
            Some(src) => src,
            None => Endpoint::v4(10, 0, 0, 2, self.alloc_port()),
        };
        match spec.kind {
            FlowKind::Tcp => {
                let flow = FourTuple::new(src, spec.dst);
                let mut app = AppEndpoint::new(
                    spec.uid,
                    &spec.package,
                    flow,
                    vec![0x47; spec.request_bytes.max(1)],
                    spec.close_after,
                );
                let syn = app.syn_packet();
                self.apps.insert(flow, app);
                sink.flow_started(flow, &spec, now);
                relay.conn_table.register(flow, true, spec.uid, SocketStateCode::SynSent);
                relay.flow_registered_at.insert(flow, now);
                if let Some(domain) = &spec.domain {
                    relay.ip_to_domain.insert(spec.dst.addr, domain.clone());
                }
                self.inject_app_packet(sh, relay, sched, now, syn);
            }
            FlowKind::Dns => {
                let resolver = Endpoint::new(sh.net.dns_config().addr, 53);
                let flow = FourTuple::new(src, resolver);
                let id = self.next_dns_id;
                self.next_dns_id = self.next_dns_id.wrapping_add(1).max(1);
                let name = spec.domain.clone().unwrap_or_else(|| "unknown.example".to_string());
                let client = DnsClient::new(spec.uid, &spec.package, src, resolver, id, &name);
                let query = client.query_packet();
                self.dns_clients.insert(flow, client);
                sink.flow_started(flow, &spec, now);
                relay.conn_table.register(flow, false, spec.uid, SocketStateCode::Close);
                relay.flow_registered_at.insert(flow, now);
                self.inject_app_packet(sh, relay, sched, now, query);
            }
        }
    }

    /// An app wrote a packet into the tunnel: the raw IP bytes are sealed
    /// into a pooled slab batch, the TunReader's retrieval is simulated and
    /// the slab is scheduled to the relay stage. This mirrors the real
    /// datapath — the TUN device hands MopEye bytes, not parsed structures —
    /// and the slab is recycled once the relay has processed it. Each write
    /// seals its own one-packet slab; the engine loop coalesces slabs that
    /// land on the same instant into larger bursts.
    pub(crate) fn inject_app_packet(
        &mut self,
        sh: &mut EngineShared,
        relay: &mut RelayStage,
        sched: &mut TimerScheduler<Event>,
        at: SimTime,
        packet: Packet,
    ) {
        let flow_key = packet.four_tuple();
        let mut slab = self.batches.get();
        let wire_len = slab.push_with(|data| packet.encode_into(data));
        sh.tun.record_app_write(wire_len);
        let mut rng = sh.checkout_rng_opt(flow_key);
        let retrieval = self.reader.retrieve(at, &sh.cost, &mut rng);
        sh.ledger.charge("TunReader", retrieval.polling_cpu + sh.cost.tun_read.sample(&mut rng));
        // TunReader puts the packet in the read queue and wakes the selector
        // so the relay's MainWorker notices it (§3.2).
        relay.selector.wakeup();
        let handoff = sh.cost.context_switch.sample(&mut rng);
        sh.checkin_rng_opt(flow_key, rng);
        let due = retrieval.retrieved_at + handoff;
        slab.stamp_due(due);
        sched.schedule(due, Event::ProcessTunBatch(slab));
    }

    /// The per-packet header-parse cost the relay's MainWorker pays, drawn
    /// from the flow's stream (the parse itself happens zero-copy on the
    /// pooled bytes).
    pub(crate) fn parse_cost(
        sh: &mut EngineShared,
        flow_key: Option<FourTuple>,
    ) -> SimDuration {
        let mut rng = sh.checkout_rng_opt(flow_key);
        let cost = SimDuration::from_micros(rng.int_inclusive(4, 25));
        sh.checkin_rng_opt(flow_key, rng);
        cost
    }

    /// A packet written by the egress stage reaches the app side: DNS
    /// clients consume answers, app endpoints consume data and emit their
    /// next requests back into the tunnel.
    pub(crate) fn on_deliver_to_app(
        &mut self,
        sh: &mut EngineShared,
        relay: &mut RelayStage,
        sink: &mut SinkStage,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        packet: Packet,
    ) {
        let Some(reverse) = packet.four_tuple() else { return };
        let flow = reverse.reversed();
        if let Some(client) = self.dns_clients.get_mut(&flow) {
            if client.handle(&packet) {
                sink.finish_flow(flow, now, true);
            }
            return;
        }
        if let Some(app) = self.apps.get_mut(&flow) {
            let responses = app.handle(&packet);
            let bytes_received = app.bytes_received;
            // Only a clean close counts as completion; a reset app stays failed.
            let done_cleanly = app.state() == mop_tun::AppState::Done;
            sink.flow_progress(flow, now, bytes_received, done_cleanly);
            for (i, response) in responses.into_iter().enumerate() {
                // Consecutive packets from the app leave a few microseconds apart.
                let at = now + SimDuration::from_micros(20 * (i as u64 + 1));
                self.inject_app_packet(sh, relay, sched, at, response);
            }
        }
    }

    /// Recycles a processed tunnel slab.
    pub(crate) fn recycle_batch(&mut self, slab: SlabBatch) {
        self.batches.put(slab);
    }
}
