//! The egress stage: TunWriter lanes carrying packets back to the apps.
//!
//! Every packet the relay sends towards an app passes through here: the
//! enqueue cost and the dedicated writer thread's timing are modelled
//! against a [`WriterLane`] — the single device-wide lane under the
//! shared-device discipline, or the connection's own lane under the
//! flow-keyed discipline (so a flow's write timing depends only on its own
//! packet train, one of the invariants behind shard-count-independent
//! determinism). The packet itself travels as a scheduled `DeliverToApp`
//! event; the writer only ever sees its wire length.

use std::collections::HashMap;

use mop_packet::{FourTuple, Packet};
use mop_simnet::{FaultDecision, SimTime, TimerScheduler};

use super::{EngineShared, Stage, StageBatch, StageLinks};
use crate::config::EngineDiscipline;
use crate::engine::Event;
use crate::tun_writer::{TunWriter, WriterLane};

/// The TunWriter-lane stage. See the [module docs](self).
#[derive(Debug)]
pub struct EgressStage {
    /// The tunnel writer (schemes + delay statistics).
    pub(crate) writer: TunWriter,
    /// Per-connection TunWriter timing lanes (flow-keyed discipline).
    pub(crate) writer_lanes: HashMap<FourTuple, WriterLane>,
}

impl Stage for EgressStage {
    fn name(&self) -> &'static str {
        "egress"
    }

    fn reserve_flows(&mut self, flows: usize) {
        self.writer_lanes.reserve(flows);
    }

    /// Writes one outbound batch to the tunnel, draining the batch so the
    /// upstream stage can reclaim its scratch vector. Each packet goes
    /// through `EgressStage::write_to_tunnel` with the batch's
    /// connect-thread flag — per-packet draws and order are identical to the
    /// item-wise path, so batching is invisible to deterministic digests.
    fn process_batch(&mut self, links: &mut StageLinks<'_>, batch: &mut StageBatch) {
        let StageBatch::Outbound { packets, connect_threads_active } = batch else { return };
        let active = *connect_threads_active;
        for (at, packet) in packets.drain(..) {
            self.write_to_tunnel(links.shared, links.sched, at, packet, active);
        }
    }
}

impl EgressStage {
    /// Creates the stage around a configured writer.
    pub fn new(writer: TunWriter) -> Self {
        Self { writer, writer_lanes: HashMap::new() }
    }

    /// Resets the stage to its just-constructed state for the same schemes,
    /// keeping the lane-table allocation.
    pub(crate) fn reset(&mut self) {
        self.writer.reset();
        self.writer_lanes.clear();
    }

    /// Writes a packet towards the apps through the TunWriter and schedules
    /// its delivery. The one owned packet travels straight into the delivery
    /// event; the device and the writer only see its wire length.
    ///
    /// Under the shared-device discipline every packet goes through the one
    /// writer-thread timing lane (queue serialisation couples flows, as on a
    /// real handset); `connect_threads_active` adds the socket-connect
    /// threads to the contending writer count. Under the flow-keyed
    /// discipline each connection has its own lane and a fixed
    /// concurrent-writer count.
    pub(crate) fn write_to_tunnel(
        &mut self,
        sh: &mut EngineShared,
        sched: &mut TimerScheduler<Event>,
        now: SimTime,
        packet: Packet,
        connect_threads_active: bool,
    ) {
        let flow_key = packet.four_tuple();
        let mut rng = sh.checkout_rng_opt(flow_key);
        let outcome = match sh.config.discipline {
            EngineDiscipline::SharedDevice => {
                let writers = 1 + usize::from(connect_threads_active);
                self.writer.submit(now, writers, &sh.cost, &mut rng, &mut sh.ledger)
            }
            EngineDiscipline::FlowKeyed => {
                let key = flow_key.map(|f| f.canonical());
                let mut lane =
                    key.and_then(|k| self.writer_lanes.get(&k).copied()).unwrap_or_default();
                let outcome =
                    self.writer.submit_lane(&mut lane, now, 2, &sh.cost, &mut rng, &mut sh.ledger);
                if let Some(k) = key {
                    self.writer_lanes.insert(k, lane);
                }
                outcome
            }
        };
        sh.checkin_rng_opt(flow_key, rng);
        sh.tun.record_relay_write(packet.wire_len());
        let mut deliver_at = outcome.written_at;
        // The data-path fault stage: only payload-bearing TCP segments are
        // eligible (control segments — SYN/ACK, pure ACKs, FINs, RSTs — are
        // never faulted, so handshakes and teardowns stay loss-free and RTT
        // samples stay comparable across loss rates). Each decision comes
        // from the flow's dedicated fault stream keyed by `(seed,
        // four-tuple)`, so any shard partition faults the same segments. The
        // writer already counted the write: a dropped segment consumed the
        // tunnel exactly like a delivered one.
        if let Some(flow) = flow_key {
            if packet.tcp().is_some_and(|t| !t.payload.is_empty()) && sh.net.faults_possible() {
                match sh.net.data_fault(flow, deliver_at) {
                    FaultDecision::Deliver => {}
                    FaultDecision::Drop => return,
                    FaultDecision::Duplicate => {
                        sched.schedule(deliver_at, Event::DeliverToApp(packet.clone()));
                    }
                    FaultDecision::Delay(extra) => deliver_at += extra,
                }
            }
        }
        sched.schedule(deliver_at, Event::DeliverToApp(packet));
    }

    /// Evicts a finished connection's writer lane (flow-keyed teardown).
    pub(crate) fn release_lane(&mut self, key: FourTuple) {
        self.writer_lanes.remove(&key);
    }
}
