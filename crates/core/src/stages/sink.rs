//! The measurement sink stage: where finished measurements fold into the
//! report.
//!
//! Every RTT sample produced by the relay lands here the moment it
//! completes: it is folded into the streaming sketch aggregates (constant
//! memory) and, unless the run opted out, retained in the raw vector. The
//! sink also owns the per-flow bookkeeping that becomes
//! [`crate::stats::FlowOutcome`]s — start/finish times, delivered bytes,
//! completion — which the other stages update through the methods here.

use std::collections::HashMap;
use std::net::IpAddr;

use mop_measure::{AggregateStore, MeasurementKind, NetKind, WindowedAggregateStore};
use mop_packet::FourTuple;
use mop_simnet::SimTime;
use mop_tun::FlowSpec;

use super::{EngineShared, Stage, StageBatch, StageLinks};
use crate::stats::{FlowOutcome, RttSample, SampleKind};

/// Per-flow bookkeeping kept by the sink.
#[derive(Debug)]
pub struct FlowMeta {
    pub(crate) package: String,
    pub(crate) started_at: SimTime,
    pub(crate) finished_at: SimTime,
    pub(crate) bytes_received: usize,
    pub(crate) completed: bool,
    /// Network label carried by the flow spec (scenario-assigned); `None`
    /// falls back to the simulated access profile at measurement time.
    pub(crate) network: Option<NetKind>,
    /// ISP label carried by the flow spec.
    pub(crate) isp: Option<String>,
}

/// The measurement/aggregate fold stage. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SinkStage {
    /// Raw samples (kept only when `retain_samples` says so).
    pub(crate) samples: Vec<RttSample>,
    /// Streaming sketch aggregates, folded per sample.
    pub(crate) aggregates: AggregateStore,
    /// Windowed per-epoch aggregates, created lazily on the first sample of
    /// a run whose config sets an epoch width (`None` otherwise, which keeps
    /// epoch-less reports — and their digests — exactly as before).
    pub(crate) windows: Option<WindowedAggregateStore>,
    /// Per-flow outcome bookkeeping.
    pub(crate) flow_meta: HashMap<FourTuple, FlowMeta>,
}

impl Stage for SinkStage {
    fn name(&self) -> &'static str {
        "sink"
    }

    fn reserve_flows(&mut self, flows: usize) {
        self.flow_meta.reserve(flows);
    }

    /// Folds a batch of finished samples into the aggregates, draining the
    /// batch so the upstream stage can reclaim its scratch vector. Identical
    /// per sample to `SinkStage::record_sample`.
    fn process_batch(&mut self, links: &mut StageLinks<'_>, batch: &mut StageBatch) {
        let StageBatch::Samples(samples) = batch else { return };
        for sample in samples.drain(..) {
            self.record_sample(links.shared, sample);
        }
    }
}

impl SinkStage {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the sink to its just-constructed state, keeping the sample and
    /// table allocations. The windowed store goes back to `None`: it is
    /// recreated lazily on the first sample of the next run, exactly as a
    /// fresh sink would.
    pub(crate) fn reset(&mut self) {
        self.samples.clear();
        self.aggregates = AggregateStore::default();
        self.windows = None;
        self.flow_meta.clear();
    }

    /// Registers a starting flow's outcome record.
    pub(crate) fn flow_started(&mut self, flow: FourTuple, spec: &FlowSpec, now: SimTime) {
        self.flow_meta.insert(
            flow,
            FlowMeta {
                package: spec.package.clone(),
                started_at: now,
                finished_at: now,
                bytes_received: 0,
                completed: false,
                network: spec.network,
                isp: spec.isp.clone(),
            },
        );
    }

    /// Marks a flow finished (with the given completion verdict).
    pub(crate) fn finish_flow(&mut self, flow: FourTuple, now: SimTime, completed: bool) {
        if let Some(meta) = self.flow_meta.get_mut(&flow) {
            meta.finished_at = now;
            meta.completed = completed;
        }
    }

    /// Records delivered-to-app progress for a flow (bytes received so far,
    /// last delivery time, and whether the app finished cleanly).
    pub(crate) fn flow_progress(
        &mut self,
        flow: FourTuple,
        now: SimTime,
        bytes_received: usize,
        done_cleanly: bool,
    ) {
        if let Some(meta) = self.flow_meta.get_mut(&flow) {
            meta.bytes_received = bytes_received;
            meta.finished_at = now;
            if done_cleanly {
                meta.completed = true;
            }
        }
    }

    /// The measurement sink fold: adds a finished sample to the streaming
    /// aggregates (constant memory) and, unless the run opted out, retains
    /// the raw sample too.
    ///
    /// The aggregation labels come from the flow's spec where the scenario
    /// assigned them; otherwise the network kind falls back to the simulated
    /// access profile at measurement time and the ISP label stays empty. The
    /// synthetic "device" is the flow's source address, which fleet
    /// scenarios assign uniquely per simulated user.
    pub(crate) fn record_sample(&mut self, sh: &EngineShared, sample: RttSample) {
        let kind = match sample.kind {
            SampleKind::Tcp => MeasurementKind::Tcp,
            SampleKind::Dns => MeasurementKind::Dns,
        };
        let meta = self.flow_meta.get(&sample.flow);
        let network = meta
            .and_then(|m| m.network)
            .unwrap_or_else(|| net_kind_of(sh.net.access_at(sample.at).network_type));
        let isp = meta.and_then(|m| m.isp.as_deref()).unwrap_or("");
        self.aggregates.observe_parts(
            kind,
            network,
            sample.package.as_deref().unwrap_or(""),
            sample.domain.as_deref().unwrap_or(""),
            isp,
            device_of(sample.flow.src.addr),
            "",
            sample.measured_ms,
        );
        if let Some(width) = sh.config.epoch_width {
            let windows = self.windows.get_or_insert_with(|| {
                WindowedAggregateStore::new(width.as_nanos().max(1), sh.config.epoch_window)
            });
            windows.observe_parts(
                sample.at.as_nanos(),
                kind,
                network,
                sample.package.as_deref().unwrap_or(""),
                sample.domain.as_deref().unwrap_or(""),
                isp,
                device_of(sample.flow.src.addr),
                "",
                sample.measured_ms,
            );
        }
        if sh.config.retain_samples {
            self.samples.push(sample);
        }
    }

    /// Drains the per-flow bookkeeping into outcome records (report time).
    pub(crate) fn flow_outcomes(&self) -> Vec<FlowOutcome> {
        self.flow_meta
            .iter()
            .map(|(flow, meta)| FlowOutcome {
                flow: *flow,
                package: meta.package.clone(),
                started_at: meta.started_at,
                finished_at: meta.finished_at,
                bytes_received: meta.bytes_received,
                completed: meta.completed,
            })
            .collect()
    }
}

/// Maps the simulator's access-network technology onto the measurement
/// schema's independent [`NetKind`] (the two enums are deliberately distinct:
/// records could come from a real deployment).
fn net_kind_of(network_type: mop_simnet::NetworkType) -> NetKind {
    match network_type {
        mop_simnet::NetworkType::Wifi => NetKind::Wifi,
        mop_simnet::NetworkType::Lte => NetKind::Lte,
        mop_simnet::NetworkType::Umts3g => NetKind::Umts3g,
        mop_simnet::NetworkType::Gprs2g => NetKind::Gprs2g,
    }
}

/// The synthetic device identifier of a flow: its source address folded to a
/// `u32`. Fleet scenarios assign each simulated user a unique source address,
/// so this is a stable per-user id; the single-device engine maps everything
/// to the one handset address.
fn device_of(addr: IpAddr) -> u32 {
    match addr {
        IpAddr::V4(v4) => u32::from(v4),
        IpAddr::V6(v6) => v6.octets().chunks_exact(4).fold(0u32, |acc, c| {
            acc.rotate_left(9) ^ u32::from_be_bytes([c[0], c[1], c[2], c[3]])
        }),
    }
}
