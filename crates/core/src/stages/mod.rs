//! The engine datapath, decomposed into explicit pipeline stages.
//!
//! The relay used to be one 1,300-line event-loop module; it is now four
//! stages behind a small [`Stage`] trait, with `engine.rs` reduced to the
//! loop that drains the timing wheel and routes events between them:
//!
//! ```text
//!             ┌─────────┐   parsed    ┌─────────┐  packets   ┌─────────┐
//!  TUN ──────▶│ ingress │────views───▶│  relay  │───to app──▶│ egress  │──▶ TUN
//!  (apps)     └─────────┘             └─────────┘            └─────────┘
//!   ▲     retrieval + parse      TCP/UDP/DNS machines,    TunWriter lanes
//!   │     app endpoints          sockets, mapper, timers       │
//!   └────────────── DeliverToApp events ◀──────────────────────┘
//!                                     │ samples
//!                                     ▼
//!                                ┌─────────┐
//!                                │  sink   │  measurement fold:
//!                                └─────────┘  sketches + samples + outcomes
//! ```
//!
//! * [`ingress`] — TUN retrieval and parse: the app endpoints write raw IP
//!   bytes into pooled buffers, the `ReaderSim` models the retrieval cost,
//!   and delivered responses re-enter here.
//! * [`relay`] — the relay decision: per-connection TCP state machines, UDP
//!   associations, external sockets, the packet-to-app mapper, and the
//!   cancellable per-connection timers.
//! * [`egress`] — the TunWriter timing lanes that carry packets back to the
//!   apps.
//! * [`sink`] — the measurement fold: every finished sample lands in the
//!   streaming sketch aggregates (and, optionally, the raw vector), and
//!   per-flow outcomes accumulate here.
//!
//! Stages own their state exclusively; anything genuinely cross-cutting —
//! the clock, the simulated network, the cost model and CPU ledger, the
//! flow-keyed RNG streams, the TUN device both ends touch — lives in
//! [`EngineShared`], passed explicitly into every stage call. Cross-stage
//! effects travel either as return values routed by the engine or as events
//! scheduled on the timing wheel; no stage reaches into another's fields.

pub mod egress;
pub mod ingress;
pub mod relay;
pub mod sink;

use std::collections::HashMap;

use mop_packet::{FourTuple, Packet};
use mop_simnet::{
    CostModel, CpuLedger, SimClock, SimDuration, SimNetwork, SimRng, SimTime, SlabBatch,
    TimerScheduler,
};
use mop_tun::TunDevice;

use crate::config::{ClockGranularity, EngineDiscipline, MopEyeConfig, WorkerModel};
use crate::engine::Event;
use crate::stats::RttSample;

pub use egress::EgressStage;
pub use ingress::IngressStage;
pub use relay::RelayStage;
pub use sink::SinkStage;

/// Salt mixed into per-flow RNG seeds so the engine's flow-keyed streams do
/// not collide with the network's (which key off the same seed and hash).
const ENGINE_KEY_SALT: u64 = 0x656e_675f_6b65_7973; // "eng_keys"

/// A batch of work travelling between pipeline stages — the unit of the
/// vectored datapath. Each variant is one stage boundary: TUN slabs enter at
/// ingress, outbound packets flow relay → egress, and finished samples flow
/// relay → sink.
#[derive(Debug)]
pub enum StageBatch {
    /// App packets sealed into one contiguous slab, headed for ingress
    /// parse + relay.
    Tun(SlabBatch),
    /// Relay-decided packets headed back to the apps through egress.
    Outbound {
        /// `(processing start, packet)` pairs in relay-decision order.
        packets: Vec<(SimTime, Packet)>,
        /// Whether temporary socket-connect threads were live when the batch
        /// was emitted (tunnel-write contention, §3.5.1).
        connect_threads_active: bool,
    },
    /// Finished RTT measurements headed for the measurement sink.
    Samples(Vec<RttSample>),
}

/// The connections a stage can reach while processing a batch: the shared
/// substrate, the timer scheduler for follow-up events, and the downstream
/// stages it may hand a derived batch to. The engine (or an upstream stage)
/// lends exactly the links the callee needs; absent stages are `None`.
#[derive(Debug)]
pub struct StageLinks<'a> {
    /// The cross-cutting substrate (clock, network, TUN, costs, RNGs).
    pub shared: &'a mut EngineShared,
    /// The event-loop scheduler, for follow-up events a batch produces
    /// (crate-visible: the event enum is an engine internal).
    pub(crate) sched: &'a mut TimerScheduler<Event>,
    /// The relay stage, when the callee sits upstream of it.
    pub relay: Option<&'a mut RelayStage>,
    /// The egress stage, when the callee sits upstream of it.
    pub egress: Option<&'a mut EgressStage>,
    /// The measurement sink, when the callee sits upstream of it.
    pub sink: Option<&'a mut SinkStage>,
}

/// One stage of the engine datapath. The trait is deliberately small: the
/// engine drives stages through their concrete methods (each stage's inputs
/// and outputs are its own), and uses the trait where it treats the pipeline
/// uniformly — naming stages in diagnostics, pre-sizing their tables for a
/// fleet-scale run, and feeding them batches of work.
pub trait Stage {
    /// The stage's name in the pipeline diagram.
    fn name(&self) -> &'static str;

    /// Pre-sizes per-flow tables for `flows` concurrent connections, so a
    /// fleet-scale run pays its table growth up front rather than on the
    /// packet path.
    fn reserve_flows(&mut self, flows: usize) {
        let _ = flows;
    }

    /// Consumes one batch of work, using `links` for the substrate and any
    /// downstream stages. Per-item semantics are identical to the item-wise
    /// methods — batching amortises dispatch, it never reorders — so stages
    /// that take no batches keep the default no-op.
    fn process_batch(&mut self, links: &mut StageLinks<'_>, batch: &mut StageBatch) {
        let _ = (links, batch);
    }
}

/// The cross-cutting substrate every stage draws on: virtual time, the
/// simulated network and TUN device, the calibrated cost model, the CPU
/// ledger, and the engine's (flow-keyed) RNG streams.
#[derive(Debug)]
pub struct EngineShared {
    /// The engine configuration.
    pub config: MopEyeConfig,
    /// The shard's virtual clock.
    pub clock: SimClock,
    /// The simulated network (paths, DNS, wire tap).
    pub net: SimNetwork,
    /// The TUN device both pipeline ends touch: ingress retrieves app
    /// writes from it, egress writes relay packets back to it.
    pub tun: TunDevice,
    /// Calibrated system-call and scheduler costs.
    pub cost: CostModel,
    /// CPU / memory / battery accounting.
    pub ledger: CpuLedger,
    /// The device-wide RNG stream ([`EngineDiscipline::SharedDevice`]).
    pub rng: SimRng,
    /// Per-connection RNG streams ([`EngineDiscipline::FlowKeyed`]), keyed
    /// by the canonical four-tuple so both directions share one stream.
    pub flow_rngs: HashMap<FourTuple, SimRng>,
    /// When the MainWorker frees up ([`WorkerModel::Saturating`] only).
    pub worker_busy_until: SimTime,
    /// How many consecutive backlogged packets the saturating MainWorker has
    /// amortised in its current burst (see [`EngineShared::worker_step`]).
    pub worker_burst_len: u64,
}

impl EngineShared {
    /// Builds the substrate for `config` over `net`.
    pub fn new(config: MopEyeConfig, net: SimNetwork) -> Self {
        let rng = SimRng::seed_from_u64(config.seed);
        Self {
            config,
            clock: SimClock::new(),
            net,
            tun: TunDevice::new(),
            cost: CostModel::android_phone(),
            ledger: CpuLedger::new(),
            rng,
            flow_rngs: HashMap::new(),
            worker_busy_until: SimTime::ZERO,
            worker_burst_len: 1,
        }
    }

    /// Resets the substrate for a new run over `net`, keeping the config,
    /// the calibrated cost model and every table allocation: the clock
    /// restarts at zero, the device-wide RNG is reseeded from the config
    /// seed, and the tunnel device and ledger are cleared — state
    /// indistinguishable from [`EngineShared::new`] with the same config.
    pub fn reset(&mut self, net: SimNetwork) {
        self.clock = SimClock::new();
        self.net = net;
        self.tun.reset();
        self.ledger.reset();
        self.rng = SimRng::seed_from_u64(self.config.seed);
        self.flow_rngs.clear();
        self.worker_busy_until = SimTime::ZERO;
        self.worker_burst_len = 1;
    }

    /// Pre-sizes the keyed-stream table (flow-keyed discipline only).
    pub fn reserve_flows(&mut self, flows: usize) {
        if self.config.discipline == EngineDiscipline::FlowKeyed {
            self.flow_rngs.reserve(flows);
        }
    }

    /// Checks out the RNG stream backing `flow`'s noise: the device-wide
    /// stream under [`EngineDiscipline::SharedDevice`], the flow's own
    /// stream (seeded from `config.seed ^ hash(flow)`) under
    /// [`EngineDiscipline::FlowKeyed`]. Pair with [`EngineShared::checkin_rng`].
    pub fn checkout_rng(&mut self, flow: FourTuple) -> SimRng {
        match self.config.discipline {
            EngineDiscipline::SharedDevice => {
                std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0))
            }
            EngineDiscipline::FlowKeyed => {
                let key = flow.canonical();
                self.flow_rngs.remove(&key).unwrap_or_else(|| {
                    SimRng::seed_from_u64(self.config.seed ^ key.stable_hash() ^ ENGINE_KEY_SALT)
                })
            }
        }
    }

    /// Returns a stream checked out with [`EngineShared::checkout_rng`].
    pub fn checkin_rng(&mut self, flow: FourTuple, rng: SimRng) {
        match self.config.discipline {
            EngineDiscipline::SharedDevice => self.rng = rng,
            EngineDiscipline::FlowKeyed => {
                self.flow_rngs.insert(flow.canonical(), rng);
            }
        }
    }

    /// [`EngineShared::checkout_rng`] for packets whose four-tuple may be
    /// absent (malformed or non-IP): those fall back to the shared stream.
    pub fn checkout_rng_opt(&mut self, flow: Option<FourTuple>) -> SimRng {
        match flow {
            Some(flow) => self.checkout_rng(flow),
            None => std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0)),
        }
    }

    /// Returns a stream checked out with [`EngineShared::checkout_rng_opt`].
    pub fn checkin_rng_opt(&mut self, flow: Option<FourTuple>, rng: SimRng) {
        match flow {
            Some(flow) => self.checkin_rng(flow, rng),
            None => self.rng = rng,
        }
    }

    /// Charges one MainWorker processing step of nominal `cost` to the CPU
    /// ledger and returns its start time: immediate under
    /// [`WorkerModel::Unbounded`]; queued behind the worker's backlog (and
    /// occupying it) under [`WorkerModel::Saturating`].
    ///
    /// A backlogged saturating worker is draining a burst: packets after the
    /// first in a burst (up to `config.batch_size`) are charged `cost /
    /// cost_model.batch_hot_divisor` (floored at `batch_floor`) instead of
    /// the full amount — the vectored datapath pays wake-up, cache warm-up
    /// and dispatch once per burst, not once per packet. With `batch_size ==
    /// 1` no packet ever qualifies, reproducing the unbatched worker
    /// exactly; under `Unbounded` the charge never affects timing at all.
    pub fn worker_step(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        match self.config.worker {
            WorkerModel::Unbounded => {
                self.ledger.charge("MainWorker", cost);
                now
            }
            WorkerModel::Saturating => {
                let backlogged = now < self.worker_busy_until;
                let hot = backlogged && self.worker_burst_len < self.config.batch_size as u64;
                let charged = if hot {
                    SimDuration::from_nanos(
                        cost.as_nanos() / u64::from(self.cost.batch_hot_divisor.max(1)),
                    )
                    .max(self.cost.batch_floor)
                } else {
                    cost
                };
                self.worker_burst_len = if hot { self.worker_burst_len + 1 } else { 1 };
                self.ledger.charge("MainWorker", charged);
                let start = now.max(self.worker_busy_until);
                self.worker_busy_until = start + charged;
                start
            }
        }
    }

    /// A timestamp at the configured clock granularity.
    pub fn timestamp(&self, t: SimTime) -> SimTime {
        match self.config.clock {
            ClockGranularity::Nanosecond => t,
            ClockGranularity::Millisecond => self.cost.coarse_timestamp(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use mop_packet::Endpoint;
    use mop_simnet::SimNetwork;
    use mop_tun::{FlowKind, FlowSpec};

    use crate::config::MopEyeConfig;
    use crate::engine::MopEyeEngine;

    /// Teardown must release the cross-stage keyed state: the shared
    /// substrate's RNG streams, the egress stage's writer lanes and the
    /// relay stage's clients — so shard memory is bounded by *concurrent*
    /// flows, not by every flow a fleet run has ever seen. (This needs
    /// stage internals, hence a unit test rather than an integration test.)
    #[test]
    fn flow_keyed_engine_evicts_finished_flow_state() {
        let flows: Vec<FlowSpec> = (0..30)
            .map(|i| FlowSpec {
                at: mop_simnet::SimTime::from_millis(10 + 40 * i as u64),
                uid: 10_100,
                package: "com.android.chrome".into(),
                src: Some(Endpoint::v4(10, 1, 0, i as u8, 40_000)),
                dst: Endpoint::v4(216, 58, 221, 132, 443),
                domain: Some("www.google.com".into()),
                request_bytes: 300,
                close_after: 2048,
                kind: FlowKind::Tcp,
                network: None,
                isp: None,
            })
            .collect();
        let net = SimNetwork::builder().seed(42).with_table2_destinations().build();
        let mut engine = MopEyeEngine::new(MopEyeConfig::fleet_shard(), net);
        let report = engine.run_flows(flows);
        assert_eq!(report.relay.connects_ok, 30);
        // Teardown released the keyed state: memory is bounded by concurrent
        // flows, not total flows — entries recreated by the app's final ACKs
        // are swept by the zombie-client cleanup.
        assert_eq!(engine.shared.flow_rngs.len(), 0, "flow RNG streams not evicted");
        assert_eq!(engine.egress.writer_lanes.len(), 0, "writer lanes not evicted");
        assert_eq!(engine.relay.clients.len(), 0, "zombie clients not removed");
    }
}
