//! Writing packets back to the VPN tunnel (§3.5.1).
//!
//! Writing to the single tunnel descriptor is not always fast: the occasional
//! write takes several milliseconds, and with multiple threads writing to the
//! one tunnel the slow cases multiply (Table 1, directWrite column). MopEye
//! therefore routes every outgoing packet through a queue drained by a
//! dedicated TunWriter thread (queueWrite), so slow writes are absorbed off
//! the MainWorker's critical path. That in turn makes the *enqueue* operation
//! the cost that matters, and the traditional put (`oldPut`) pays a 1–5 ms
//! wait/notify wake-up whenever the consumer has parked on an empty queue.
//! The `newPut` sleep-counter algorithm keeps the consumer checking the queue
//! for a while before it parks, so the wake-up is almost never paid.

use mop_simnet::{CostModel, CpuLedger, SimDuration, SimRng, SimTime};

use crate::config::{EnqueueScheme, WriteScheme};

/// The number of empty checks the TunWriter performs before parking in
/// `wait()` under the `newPut` scheme (the paper's sleep-counter threshold).
const NEWPUT_PARK_THRESHOLD: u32 = 512;
/// How long one round of queue checking takes the TunWriter thread.
const CHECK_INTERVAL: SimDuration = SimDuration::from_micros(80);

/// The producer-visible outcome of submitting one packet for tunnel write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// How long the submitting thread was blocked (enqueue cost for the
    /// queued scheme, the full write cost for the direct scheme).
    pub producer_delay: SimDuration,
    /// When the packet was actually written to the tunnel (delivery to the
    /// app can start then).
    pub written_at: SimTime,
}

/// Delay statistics split the way Table 1 reports them.
#[derive(Debug, Default, Clone)]
pub struct WriteDelayStats {
    /// Delays of the actual tunnel `write()` calls, in milliseconds.
    pub write_delays_ms: Vec<f64>,
    /// Delays of the enqueue operations (empty for the direct scheme).
    pub enqueue_delays_ms: Vec<f64>,
    /// How many times the consumer was parked in `wait()` when a packet was
    /// submitted (i.e. a wake-up was required).
    pub consumer_parked_hits: u64,
}

impl WriteDelayStats {
    /// Adds another writer's recorded delays into this one (cross-shard
    /// aggregation).
    pub fn merge(&mut self, other: &WriteDelayStats) {
        self.write_delays_ms.extend_from_slice(&other.write_delays_ms);
        self.enqueue_delays_ms.extend_from_slice(&other.enqueue_delays_ms);
        self.consumer_parked_hits += other.consumer_parked_hits;
    }

    /// Clears the recorded delays keeping the vector allocations — the
    /// clear-don't-drop reuse path.
    pub fn clear(&mut self) {
        self.write_delays_ms.clear();
        self.enqueue_delays_ms.clear();
        self.consumer_parked_hits = 0;
    }

    /// The fraction of recorded delays of `which` kind that exceed 1 ms — the
    /// paper's "large overheads" rate.
    pub fn large_fraction(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().filter(|v| **v > 1.0).count() as f64 / values.len() as f64
    }
}

/// The timing state of one tunnel-writer consumer: when its dedicated writer
/// thread frees up and when it will give up checking an empty queue and park
/// in `wait()`.
///
/// The single-device engine has exactly one of these (owned by the
/// [`TunWriter`]). The flow-keyed fleet engine keeps one *per connection*, so
/// a flow's writer timing depends only on that flow's own packet train — one
/// of the invariants behind shard-count-independent determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriterLane {
    /// When the dedicated writer thread becomes free (queued scheme).
    writer_busy_until: SimTime,
    /// When the writer thread last saw the queue become empty.
    queue_empty_since: SimTime,
    /// Time after which the consumer will have parked in `wait()` if no new
    /// packet arrives (depends on the enqueue scheme).
    consumer_parks_at: SimTime,
}

impl WriterLane {
    /// A fresh lane with an idle writer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The tunnel writer: either a pass-through (direct) or a queue plus a
/// dedicated writer thread (queued).
#[derive(Debug)]
pub struct TunWriter {
    scheme: WriteScheme,
    enqueue: EnqueueScheme,
    /// The single device-wide timing lane used by [`TunWriter::submit`].
    lane: WriterLane,
    stats: WriteDelayStats,
    packets_written: u64,
}

impl TunWriter {
    /// Creates a writer with the given schemes.
    pub fn new(scheme: WriteScheme, enqueue: EnqueueScheme) -> Self {
        Self {
            scheme,
            enqueue,
            lane: WriterLane::new(),
            stats: WriteDelayStats::default(),
            packets_written: 0,
        }
    }

    /// The write scheme in use.
    pub fn scheme(&self) -> WriteScheme {
        self.scheme
    }

    /// Resets the writer to its just-constructed state for the same schemes,
    /// keeping the delay-vector allocations.
    pub fn reset(&mut self) {
        self.lane = WriterLane::new();
        self.stats.clear();
        self.packets_written = 0;
    }

    /// Submits one packet for writing to the tunnel at time `now`, using the
    /// writer's own device-wide timing lane.
    ///
    /// `concurrent_writers` is how many threads currently want to write
    /// (MainWorker plus any socket-connect threads); it only matters for the
    /// direct scheme, where they contend for the tunnel.
    ///
    /// The packet itself never passes through here — the engine keeps the one
    /// owned copy and delivers it at `written_at`; this type models the
    /// *timing* of the path, so it needs no bytes at all.
    pub fn submit(
        &mut self,
        now: SimTime,
        concurrent_writers: usize,
        cost_model: &CostModel,
        rng: &mut SimRng,
        ledger: &mut CpuLedger,
    ) -> SubmitOutcome {
        let mut lane = self.lane;
        let outcome = self.submit_lane(&mut lane, now, concurrent_writers, cost_model, rng, ledger);
        self.lane = lane;
        outcome
    }

    /// Submits one packet against a caller-owned timing [`WriterLane`]
    /// (the flow-keyed engine passes each connection's own lane). Statistics
    /// still accumulate centrally on the writer.
    pub fn submit_lane(
        &mut self,
        lane: &mut WriterLane,
        now: SimTime,
        concurrent_writers: usize,
        cost_model: &CostModel,
        rng: &mut SimRng,
        ledger: &mut CpuLedger,
    ) -> SubmitOutcome {
        self.packets_written += 1;
        match self.scheme {
            WriteScheme::Direct => {
                let delay = cost_model.sample_tun_write(concurrent_writers.max(1), rng);
                self.stats.write_delays_ms.push(delay.as_millis_f64());
                ledger.charge("MainWorker", delay);
                SubmitOutcome { producer_delay: delay, written_at: now + delay }
            }
            WriteScheme::Queue => {
                let enqueue_delay = self.enqueue_cost(lane, now, cost_model, rng);
                self.stats.enqueue_delays_ms.push(enqueue_delay.as_millis_f64());
                ledger.charge("MainWorker", enqueue_delay);
                // The dedicated writer thread drains the queue; it is the only
                // thread writing, so contention is rare.
                let write_cost = cost_model.sample_tun_write(1, rng);
                self.stats.write_delays_ms.push(write_cost.as_millis_f64());
                ledger.charge("TunWriter", write_cost);
                let start = (now + enqueue_delay).max(lane.writer_busy_until);
                let written_at = start + write_cost;
                lane.writer_busy_until = written_at;
                // After finishing this packet the queue is empty again; the
                // consumer starts its empty-check countdown.
                lane.queue_empty_since = written_at;
                lane.consumer_parks_at = match self.enqueue {
                    // Traditional put: the consumer calls `wait()` as soon as
                    // it finds the queue empty.
                    EnqueueScheme::OldPut => written_at,
                    // Sleep counter: the consumer performs NEWPUT_PARK_THRESHOLD
                    // rounds of checking before parking.
                    EnqueueScheme::NewPut => {
                        written_at + CHECK_INTERVAL.saturating_mul(u64::from(NEWPUT_PARK_THRESHOLD))
                    }
                };
                SubmitOutcome { producer_delay: enqueue_delay, written_at }
            }
        }
    }

    fn enqueue_cost(
        &mut self,
        lane: &WriterLane,
        now: SimTime,
        cost_model: &CostModel,
        rng: &mut SimRng,
    ) -> SimDuration {
        let consumer_parked = now >= lane.consumer_parks_at;
        if consumer_parked {
            self.stats.consumer_parked_hits += 1;
            // Waking a parked consumer goes through wait/notify; the producer
            // occasionally gets caught in the monitor handoff and pays a
            // millisecond-scale delay, otherwise just a slightly slower put.
            if rng.chance(0.12) {
                return SimDuration::from_millis_f64(cost_model.wait_notify.sample_ms(rng));
            }
            return cost_model.enqueue_fast.sample(rng) + SimDuration::from_micros(rng.int_inclusive(20, 120));
        }
        cost_model.enqueue_fast.sample(rng)
    }

    /// Delay statistics accumulated so far.
    pub fn stats(&self) -> &WriteDelayStats {
        &self.stats
    }

    /// Packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_scheme(
        scheme: WriteScheme,
        enqueue: EnqueueScheme,
        gaps_ms: &[u64],
        writers: usize,
    ) -> (TunWriter, CpuLedger) {
        let cost = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(17);
        let mut ledger = CpuLedger::new();
        let mut writer = TunWriter::new(scheme, enqueue);
        let mut now = SimTime::from_millis(5);
        for (i, gap) in gaps_ms.iter().cycle().take(3000).enumerate() {
            let _ = i;
            let outcome = writer.submit(now, writers, &cost, &mut rng, &mut ledger);
            assert!(outcome.written_at >= now);
            now = now + SimDuration::from_millis(*gap) + SimDuration::from_micros(13);
        }
        (writer, ledger)
    }

    #[test]
    fn direct_writes_record_write_delays_only() {
        let (writer, ledger) = run_scheme(WriteScheme::Direct, EnqueueScheme::OldPut, &[1, 3], 1);
        assert_eq!(writer.stats().write_delays_ms.len(), 3000);
        assert!(writer.stats().enqueue_delays_ms.is_empty());
        assert!(ledger.busy_of("MainWorker") > SimDuration::ZERO);
        assert_eq!(ledger.busy_of("TunWriter"), SimDuration::ZERO);
        assert_eq!(writer.packets_written(), 3000);
    }

    #[test]
    fn contended_direct_writes_have_more_large_delays_than_queued() {
        let (direct, _) = run_scheme(WriteScheme::Direct, EnqueueScheme::OldPut, &[0, 1, 2], 3);
        let (queued, _) = run_scheme(WriteScheme::Queue, EnqueueScheme::NewPut, &[0, 1, 2], 3);
        let direct_large = WriteDelayStats::large_fraction(&direct.stats().write_delays_ms);
        // For the queued scheme what blocks the producer is the enqueue.
        let queued_large = WriteDelayStats::large_fraction(&queued.stats().enqueue_delays_ms);
        assert!(
            direct_large > queued_large * 3.0,
            "direct {direct_large} vs queued {queued_large}"
        );
    }

    #[test]
    fn oldput_pays_wait_notify_much_more_often_than_newput() {
        // Packet gaps straddle the newPut park threshold (~5 ms of checking):
        // bursty sub-millisecond trains separated by longer idle gaps.
        let gaps = [0u64, 0, 0, 1, 0, 0, 12, 0, 1, 0, 0, 30];
        let (old, _) = run_scheme(WriteScheme::Queue, EnqueueScheme::OldPut, &gaps, 1);
        let (new, _) = run_scheme(WriteScheme::Queue, EnqueueScheme::NewPut, &gaps, 1);
        let old_large = WriteDelayStats::large_fraction(&old.stats().enqueue_delays_ms);
        let new_large = WriteDelayStats::large_fraction(&new.stats().enqueue_delays_ms);
        assert!(old_large > 0.01, "oldPut large fraction {old_large}");
        assert!(new_large < old_large / 5.0, "newPut {new_large} vs oldPut {old_large}");
        assert!(old.stats().consumer_parked_hits > new.stats().consumer_parked_hits * 2);
    }

    #[test]
    fn queued_writer_serialises_back_to_back_writes() {
        let cost = CostModel::android_phone();
        let mut rng = SimRng::seed_from_u64(3);
        let mut ledger = CpuLedger::new();
        let mut writer = TunWriter::new(WriteScheme::Queue, EnqueueScheme::NewPut);
        let now = SimTime::from_millis(1);
        let first = writer.submit(now, 1, &cost, &mut rng, &mut ledger);
        let second = writer.submit(now, 1, &cost, &mut rng, &mut ledger);
        // The dedicated thread writes them one after the other.
        assert!(second.written_at > first.written_at);
        // But the producer is only blocked for the enqueue, not the writes.
        assert!(second.producer_delay < SimDuration::from_millis(1));
    }

    #[test]
    fn large_fraction_of_empty_is_zero() {
        assert_eq!(WriteDelayStats::large_fraction(&[]), 0.0);
        assert_eq!(WriteDelayStats::large_fraction(&[0.5, 0.2]), 0.0);
        assert_eq!(WriteDelayStats::large_fraction(&[2.0, 0.5]), 0.5);
    }

    #[test]
    fn scheme_accessor() {
        let w = TunWriter::new(WriteScheme::Queue, EnqueueScheme::NewPut);
        assert_eq!(w.scheme(), WriteScheme::Queue);
    }
}
