//! The MopEye engine: opportunistic per-app RTT measurement via user-space
//! packet relaying.
//!
//! This crate is the paper's primary contribution. It glues the substrates
//! together the way the MopEye Android app does (Figure 4 of the paper):
//!
//! * a **TunReader** retrieves raw IP packets from the TUN device using a
//!   configurable read strategy (§3.1),
//! * a **MainWorker** parses each packet, drives the per-connection
//!   user-space TCP state machine, and relays data over regular sockets
//!   through a selector (§2.3, §3.2),
//! * temporary **socket-connect threads** run each external `connect()` in
//!   blocking mode so that the SYN ↔ SYN/ACK time — the app's network RTT —
//!   is measured accurately, and perform the lazy packet-to-app mapping off
//!   the critical path (§2.4, §3.3),
//! * a **TunWriter** writes packets back to the tunnel through a queue with
//!   the `newPut` enqueue algorithm (§3.5.1),
//! * DNS queries are relayed and measured in temporary blocking-mode threads
//!   (§2.4).
//!
//! The engine runs against the virtual-time substrates in `mop-simnet`,
//! `mop-tun` and `mop-procnet`; every design decision the paper evaluates is
//! a knob on [`config::MopEyeConfig`], which is how the benches reproduce the
//! paper's tables and its ablations.
//!
//! One [`MopEyeEngine`] is one event loop — one core. The [`shard`] module
//! scales the relay out: [`FleetEngine`] hashes every connection four-tuple
//! to one of N shard engines (each with its own event loop, buffer pool,
//! TCP machines and network view), connected to the ingress dispatcher and
//! the measurement sink by bounded SPSC queues. Under the flow-keyed
//! discipline the merged result is bit-identical at any shard count.
//!
//! # Examples
//!
//! A two-shard fleet over a small scenario-style flow set:
//!
//! ```
//! use mopeye_core::{FleetConfig, FleetEngine};
//! use mop_packet::Endpoint;
//! use mop_simnet::{SimNetwork, SimTime};
//! use mop_tun::{FlowKind, FlowSpec};
//!
//! let flows: Vec<FlowSpec> = (0..40)
//!     .map(|i| FlowSpec {
//!         at: SimTime::from_millis(10 + i),
//!         uid: 10_100,
//!         package: "com.android.chrome".into(),
//!         // Fleet flows pre-assign their source: the four-tuple is the shard key.
//!         src: Some(Endpoint::v4(10, 1, 0, i as u8, 40_000)),
//!         dst: Endpoint::v4(216, 58, 221, 132, 443),
//!         domain: Some("www.google.com".into()),
//!         request_bytes: 200,
//!         close_after: 1024,
//!         kind: FlowKind::Tcp,
//!         network: None,
//!         isp: None,
//!     })
//!     .collect();
//! let builder = SimNetwork::builder().seed(7).with_table2_destinations();
//! let fleet = FleetEngine::new(FleetConfig::new(2), builder);
//! let report = fleet.run(flows);
//! assert_eq!(report.merged.relay.connects_ok, 40);
//! assert_eq!(report.per_shard.len(), 2);
//! ```

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod report;
pub mod shard;
pub mod stages;
pub mod stats;
pub mod tun_writer;

pub use checkpoint::{
    epoch_boundary, run_report_from_json, run_report_to_json, split_at, FleetCheckpoint,
    CHECKPOINT_FORMAT_VERSION,
};
pub use config::{
    EngineDiscipline, EnqueueScheme, MopEyeConfig, ProtectMode, TimestampMode, WorkerModel,
    WriteScheme,
};
pub use engine::MopEyeEngine;
pub use mop_tcpstack::CongestionAlgo;
pub use report::RunReport;
pub use shard::{FleetConfig, FleetEngine, FleetReport, ResidentFleet, ShardOutcome};
pub use stages::Stage;
pub use stats::{FlowOutcome, RelayStats, RttSample, SampleKind};
pub use tun_writer::{SubmitOutcome, TunWriter, WriteDelayStats, WriterLane};
