//! The MopEye engine: opportunistic per-app RTT measurement via user-space
//! packet relaying.
//!
//! This crate is the paper's primary contribution. It glues the substrates
//! together the way the MopEye Android app does (Figure 4 of the paper):
//!
//! * a **TunReader** retrieves raw IP packets from the TUN device using a
//!   configurable read strategy (§3.1),
//! * a **MainWorker** parses each packet, drives the per-connection
//!   user-space TCP state machine, and relays data over regular sockets
//!   through a selector (§2.3, §3.2),
//! * temporary **socket-connect threads** run each external `connect()` in
//!   blocking mode so that the SYN ↔ SYN/ACK time — the app's network RTT —
//!   is measured accurately, and perform the lazy packet-to-app mapping off
//!   the critical path (§2.4, §3.3),
//! * a **TunWriter** writes packets back to the tunnel through a queue with
//!   the `newPut` enqueue algorithm (§3.5.1),
//! * DNS queries are relayed and measured in temporary blocking-mode threads
//!   (§2.4).
//!
//! The engine runs against the virtual-time substrates in `mop-simnet`,
//! `mop-tun` and `mop-procnet`; every design decision the paper evaluates is
//! a knob on [`config::MopEyeConfig`], which is how the benches reproduce the
//! paper's tables and its ablations.

pub mod config;
pub mod engine;
pub mod stats;
pub mod tun_writer;

pub use config::{EnqueueScheme, MopEyeConfig, ProtectMode, TimestampMode, WriteScheme};
pub use engine::{MopEyeEngine, RunReport};
pub use stats::{FlowOutcome, RelayStats, RttSample, SampleKind};
pub use tun_writer::{SubmitOutcome, TunWriter, WriteDelayStats};
