//! The MopEye engine event loop.
//!
//! [`MopEyeEngine`] wires the substrates together exactly the way Figure 4 of
//! the paper wires the app's three core threads, and drives everything in
//! virtual time:
//!
//! ```text
//!  apps ──TUN──▶ TunReader ──read queue──▶ MainWorker ──sockets──▶ servers
//!   ▲                                          │    ▲
//!   └────────── TunWriter ◀──write queue───────┘    └── socket-connect
//!                                                        threads (RTT!)
//! ```
//!
//! The module itself is only the *loop*: pending work lives on a
//! [`TimerScheduler`] (the O(1) timing wheel by default, the legacy heap for
//! reference), and each popped event is routed to the pipeline stage that
//! owns it — [`IngressStage`] (TUN retrieval + parse + app endpoints),
//! [`RelayStage`] (TCP/UDP/DNS state-machine dispatch and per-connection
//! timers), [`EgressStage`] (TunWriter lanes) and [`SinkStage`] (the
//! measurement fold). See [`crate::stages`] for the pipeline diagram and
//! `docs/ARCHITECTURE.md` for the life of a packet and of a timer.
//!
//! Each run consumes a set of app workloads, relays every packet they
//! generate, and produces a [`RunReport`] with the RTT samples (against
//! ground truth), the relay counters, the mapping statistics, the
//! tunnel-write delay distributions and the resource ledger — everything the
//! paper's evaluation sections need.

use mop_packet::{FourTuple, Packet};
use mop_simnet::{Profiler, SimNetwork, SimTime, SlabBatch, TimerScheduler};
use mop_tun::{FlowSpec, ReaderSim, Workload};

use crate::config::MopEyeConfig;
use crate::stages::{
    EgressStage, EngineShared, IngressStage, RelayStage, SinkStage, Stage, StageBatch, StageLinks,
};
use crate::tun_writer::TunWriter;

pub use crate::report::RunReport;

/// Internal events driving the engine loop, routed between stages.
#[derive(Debug)]
pub(crate) enum Event {
    /// An app opens a flow described by the spec. (→ ingress)
    FlowStart(FlowSpec),
    /// The MainWorker processes a slab batch of raw packet bytes retrieved
    /// from the tunnel. (→ ingress parse, then relay)
    ///
    /// The slab comes from (and returns to) the ingress stage's batch pool;
    /// the relay parses each packet in place with the zero-copy views. The
    /// engine loop coalesces consecutive same-instant slabs into one burst
    /// before dispatching.
    ProcessTunBatch(SlabBatch),
    /// The external connect for `flow` has completed (successfully or not).
    /// (→ relay)
    ExternalConnected(FourTuple),
    /// Response data has become readable on the external socket of `flow`.
    /// (→ relay)
    SocketReadable(FourTuple),
    /// The DNS response for `flow` has arrived; relay it to the app.
    /// (→ relay)
    DnsResponse {
        /// The app-side DNS flow.
        flow: FourTuple,
        /// The response packet to write to the tunnel.
        packet: Packet,
    },
    /// A packet written to the tunnel is delivered to the app side.
    /// (→ ingress)
    DeliverToApp(Packet),
    /// The cancellable idle timer of `flow` expired with no relay activity.
    /// (→ relay)
    IdleTimeout(FourTuple),
    /// The retransmission timer of `flow` expired with data still in flight.
    /// (→ relay)
    RtoTimeout(FourTuple),
}

impl Event {
    /// The profiling phase this event's dispatch is accounted under.
    pub(crate) fn phase_name(&self) -> &'static str {
        match self {
            Event::FlowStart(_) => "event.flow_start",
            Event::ProcessTunBatch(_) => "event.tun_batch",
            Event::ExternalConnected(_) => "event.external_connected",
            Event::SocketReadable(_) => "event.socket_readable",
            Event::DnsResponse { .. } => "event.dns_response",
            Event::DeliverToApp(_) => "event.deliver_to_app",
            Event::IdleTimeout(_) => "event.idle_timeout",
            Event::RtoTimeout(_) => "event.rto_timeout",
        }
    }
}

/// The MopEye relay engine: the event loop over the four pipeline stages.
pub struct MopEyeEngine {
    pub(crate) shared: EngineShared,
    pub(crate) ingress: IngressStage,
    pub(crate) relay: RelayStage,
    pub(crate) egress: EgressStage,
    pub(crate) sink: SinkStage,
    pub(crate) sched: TimerScheduler<Event>,
    events_processed: u64,
    /// Wall-clock phase timers (zero-sized no-op unless the `profiling`
    /// feature is on).
    profiler: Profiler,
}

impl MopEyeEngine {
    /// Creates an engine over `net` with the given configuration.
    pub fn new(config: MopEyeConfig, net: SimNetwork) -> Self {
        let ingress = IngressStage::new(ReaderSim::new(config.read_strategy), config.batch_size);
        let relay = RelayStage::new(config.mapping, config.protect);
        let egress = EgressStage::new(TunWriter::new(config.write_scheme, config.enqueue_scheme));
        let sched = TimerScheduler::new(config.scheduler, config.wheel_granularity);
        Self {
            shared: EngineShared::new(config, net),
            ingress,
            relay,
            egress,
            sink: SinkStage::new(),
            sched,
            events_processed: 0,
            profiler: Profiler::new(),
        }
    }

    /// Resets the engine for a new run over `net`, reusing every allocation:
    /// stage tables, buffer and slab pools, the timing wheel's slot slab and
    /// the scratch vectors all survive cleared rather than dropped, so a
    /// resident engine's steady state allocates nothing. A reset engine is
    /// observationally identical to `MopEyeEngine::new(config, net)` with
    /// the same config — the clock restarts at zero, RNG streams reseed from
    /// the config seed, and every counter and identifier sequence rewinds.
    pub fn reset(&mut self, net: SimNetwork) {
        self.shared.reset(net);
        self.ingress.reset();
        self.relay.reset();
        self.egress.reset();
        self.sink.reset();
        self.sched.reset();
        self.events_processed = 0;
        let _ = self.profiler.take_report();
    }

    /// The engine configuration.
    pub fn config(&self) -> &MopEyeConfig {
        &self.shared.config
    }

    /// Access to the underlying network (e.g. to inspect the wire tap).
    pub fn network(&self) -> &SimNetwork {
        &self.shared.net
    }

    /// The pipeline stages, in datapath order.
    pub(crate) fn stages(&mut self) -> [&mut dyn Stage; 4] {
        [&mut self.ingress, &mut self.relay, &mut self.egress, &mut self.sink]
    }

    /// The stage names, in datapath order (diagnostics and docs).
    pub fn stage_names(&self) -> [&'static str; 4] {
        let stages: [&dyn Stage; 4] = [&self.ingress, &self.relay, &self.egress, &self.sink];
        stages.map(|s| s.name())
    }

    /// Runs a set of workloads to completion and reports.
    pub fn run(&mut self, workloads: &[Workload]) -> RunReport {
        let mut flows = Vec::new();
        let mut wl_rng = self.shared.rng.fork("workloads");
        for workload in workloads {
            self.relay.packages.install(workload.uid, &workload.package);
            flows.extend(workload.generate(&mut wl_rng));
        }
        self.run_flows(flows)
    }

    /// Runs an explicit list of flows to completion and reports.
    ///
    /// The loop drains the scheduler in timestamp-batched bursts: pops are
    /// nondecreasing in time with FIFO order at equal instants, so
    /// *consecutive* TUN slabs due at the same instant can be absorbed into
    /// one burst (up to `config.batch_size` packets) and dispatched as a
    /// single stage batch. Coalescing is restricted to equal timestamps
    /// because processing an event at `t1` may schedule new work strictly
    /// between `t1` and the next queued event — merging across distinct
    /// instants would reorder that work. At equal instants the merge is
    /// exactly order-preserving: anything the first slab's processing
    /// schedules for the same instant gets a later FIFO sequence number than
    /// the already-queued follower, so the follower would have popped first
    /// anyway.
    pub fn run_flows(&mut self, flows: Vec<FlowSpec>) -> RunReport {
        let setup = self.profiler.begin();
        self.reserve_flows(flows.len());
        for spec in flows {
            self.relay.packages.install(spec.uid, &spec.package);
            self.sched.schedule(spec.at, Event::FlowStart(spec));
        }
        self.profiler.end("run.flow_setup", setup);
        let batch_cap = self.shared.config.batch_size.max(1);
        let mut stash: Option<(SimTime, Event)> = None;
        while let Some((at, event)) = stash.take().or_else(|| self.sched.pop()) {
            let span = self.profiler.begin();
            let phase = event.phase_name();
            match event {
                Event::ProcessTunBatch(mut slab) => {
                    // Absorb consecutive same-instant slabs into this burst.
                    // Only same-instant followers may be popped at all:
                    // pulling a *later* event out here would jump it ahead of
                    // any earlier work the burst schedules while processing.
                    while slab.len() < batch_cap && self.sched.peek_time() == Some(at) {
                        match self.sched.pop() {
                            Some((_, Event::ProcessTunBatch(mut follower))) => {
                                slab.absorb(&mut follower);
                                self.ingress.recycle_batch(follower);
                            }
                            // A same-instant non-batch event: it was queued
                            // before anything the burst can schedule at this
                            // instant, so running it right after the burst
                            // preserves FIFO order exactly.
                            Some(other) => {
                                stash = Some(other);
                                break;
                            }
                            None => break,
                        }
                    }
                    self.shared.clock.advance_to(at);
                    let proceed = self.process_tun_batch(slab);
                    self.profiler.end(phase, span);
                    if !proceed {
                        break;
                    }
                }
                event => {
                    self.shared.clock.advance_to(at);
                    let proceed = self.dispatch(at, event);
                    self.profiler.end(phase, span);
                    if !proceed {
                        break;
                    }
                }
            }
        }
        self.report()
    }

    /// Pre-sizes every stage's per-flow tables for `flows` concurrent
    /// connections, so a fleet-scale run pays its table growth up front
    /// rather than on the packet path.
    pub fn reserve_flows(&mut self, flows: usize) {
        for stage in self.stages() {
            stage.reserve_flows(flows);
        }
        self.shared.reserve_flows(flows);
    }

    /// Counts and dispatches one event; false stops the run (event budget).
    fn dispatch(&mut self, at: SimTime, event: Event) -> bool {
        self.events_processed += 1;
        if self.events_processed > self.shared.config.max_events {
            return false;
        }
        self.route(at, event);
        true
    }

    /// Routes one event to the stage that owns it. Cross-stage effects
    /// travel either as scheduler events or through the explicitly passed
    /// downstream stages.
    fn route(&mut self, now: SimTime, event: Event) {
        let (shared, sched) = (&mut self.shared, &mut self.sched);
        match event {
            Event::FlowStart(spec) => self.ingress.on_flow_start(
                shared,
                &mut self.relay,
                &mut self.sink,
                sched,
                now,
                spec,
            ),
            Event::ProcessTunBatch(_) => {
                unreachable!("TUN batches are coalesced and dispatched by the run_flows loop")
            }
            Event::ExternalConnected(flow) => self.relay.on_external_connected(
                shared,
                &mut self.egress,
                &mut self.sink,
                sched,
                now,
                flow,
            ),
            Event::SocketReadable(flow) => {
                self.relay.on_socket_readable(shared, &mut self.egress, sched, now, flow)
            }
            Event::DnsResponse { flow, packet } => self.relay.on_dns_response(
                shared,
                &mut self.egress,
                &mut self.sink,
                sched,
                now,
                flow,
                packet,
            ),
            Event::DeliverToApp(packet) => self.ingress.on_deliver_to_app(
                shared,
                &mut self.relay,
                &mut self.sink,
                sched,
                now,
                packet,
            ),
            Event::IdleTimeout(flow) => self.relay.on_idle_timeout(
                shared,
                &mut self.egress,
                &mut self.sink,
                sched,
                now,
                flow,
            ),
            Event::RtoTimeout(flow) => {
                self.relay.on_rto_timeout(shared, &mut self.egress, sched, now, flow)
            }
        }
    }

    /// The ingress → relay handoff for one coalesced tunnel burst: budget
    /// the event count (each packet in the slab was one scheduled event),
    /// hand the slab to the ingress stage's batch path, and recycle it.
    /// Returns false when the event budget is exhausted.
    fn process_tun_batch(&mut self, mut slab: SlabBatch) -> bool {
        // Reproduce the item-wise budget semantics exactly: events count one
        // by one, and the event that crosses the budget is counted but not
        // processed.
        let packets = slab.len() as u64;
        let remaining = self.shared.config.max_events.saturating_sub(self.events_processed);
        let over_budget = packets > remaining;
        let process = packets.min(remaining);
        self.events_processed += process + u64::from(over_budget);
        slab.truncate(process as usize);
        let mut batch = StageBatch::Tun(slab);
        let mut links = StageLinks {
            shared: &mut self.shared,
            sched: &mut self.sched,
            relay: Some(&mut self.relay),
            egress: Some(&mut self.egress),
            sink: Some(&mut self.sink),
        };
        self.ingress.process_batch(&mut links, &mut batch);
        if let StageBatch::Tun(slab) = batch {
            self.ingress.recycle_batch(slab);
        }
        !over_budget
    }

    fn report(&mut self) -> RunReport {
        // Harvest the scheduler's and selector's gated structure counters
        // into the run profile (no-ops when profiling is off).
        for (name, value) in self.sched.profile_counters() {
            self.profiler.record(name, value);
        }
        for (name, value) in self.relay.selector.profile_counters() {
            self.profiler.record(name, value);
        }
        RunReport {
            flows: self.sink.flow_outcomes(),
            samples: std::mem::take(&mut self.sink.samples),
            aggregates: std::mem::take(&mut self.sink.aggregates),
            windows: self.sink.windows.take(),
            relay: std::mem::take(&mut self.relay.stats),
            mapping: self.relay.mapper.stats(),
            write_delays: self.egress.writer.stats().clone(),
            tun: self.shared.tun.stats(),
            ledger: self.shared.ledger.clone(),
            buffer_pool: self.ingress.batches.stats(),
            socket_read_pool: self.relay.sockets.read_pool_stats(),
            finished_at: self.shared.clock.now(),
            events_processed: self.events_processed,
            events_scheduled: self.sched.scheduled_total(),
            profile: self.profiler.take_report(),
        }
    }
}
