//! The MopEye engine event loop.
//!
//! [`MopEyeEngine`] wires the substrates together exactly the way Figure 4 of
//! the paper wires the app's three core threads, and drives everything in
//! virtual time:
//!
//! ```text
//!  apps ──TUN──▶ TunReader ──read queue──▶ MainWorker ──sockets──▶ servers
//!   ▲                                          │    ▲
//!   └────────── TunWriter ◀──write queue───────┘    └── socket-connect
//!                                                        threads (RTT!)
//! ```
//!
//! Each run consumes a set of app workloads, relays every packet they
//! generate, and produces a [`RunReport`] with the RTT samples (against
//! ground truth), the relay counters, the mapping statistics, the
//! tunnel-write delay distributions and the resource ledger — everything the
//! paper's evaluation sections need.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use mop_measure::{AggregateStore, MeasurementKind, NetKind};
use mop_packet::{DnsMessage, Endpoint, FourTuple, Packet, PacketBuilder, PacketView, TransportView};
use mop_procnet::{
    CachedMapper, ConnectionTable, EagerMapper, LazyMapper, MappingStats, MappingStrategy,
    PackageManager, SocketStateCode,
};
use mop_simnet::{
    BufferPool, CostModel, CpuLedger, EventQueue, PoolStats, SimClock, SimDuration, SimNetwork,
    SimRng, SimTime, SocketId, SocketMode, SocketSet, SocketState, Selector,
};
use mop_tcpstack::{ClientRegistry, RelayAction, SegmentVerdict, UdpRegistry};
use mop_tun::{AppEndpoint, DnsClient, FlowKind, FlowSpec, ReaderSim, TunDevice, TunStats, Workload};

use crate::config::{
    ClockGranularity, EngineDiscipline, MopEyeConfig, ProtectMode, TimestampMode, WorkerModel,
};
use crate::stats::{FlowOutcome, RelayStats, RttSample, SampleKind};
use crate::tun_writer::{TunWriter, WriteDelayStats, WriterLane};

/// Salt mixed into per-flow RNG seeds so the engine's flow-keyed streams do
/// not collide with the network's (which key off the same seed and hash).
const ENGINE_KEY_SALT: u64 = 0x656e_675f_6b65_7973; // "eng_keys"
/// Salt for the throwaway streams that absorb variable-draw-count work
/// (packet-to-app mapping walks the whole connection table, whose size
/// depends on co-resident flows; those draws must not advance a flow's main
/// stream or the stream would become partition-dependent).
const MAPPING_KEY_SALT: u64 = 0x6d61_705f_6b65_7973; // "map_keys"

/// Internal events driving the engine loop.
#[derive(Debug)]
enum Event {
    /// An app opens a flow described by the spec.
    FlowStart(FlowSpec),
    /// The MainWorker processes raw packet bytes retrieved from the tunnel.
    ///
    /// The buffer comes from (and returns to) the engine's [`BufferPool`];
    /// the MainWorker parses it in place with the zero-copy views.
    ProcessTunPacket(Vec<u8>),
    /// The external connect for `flow` has completed (successfully or not).
    ExternalConnected(FourTuple),
    /// Response data has become readable on the external socket of `flow`.
    SocketReadable(FourTuple),
    /// The DNS response for `flow` has arrived; relay it to the app.
    DnsResponse {
        /// The app-side DNS flow.
        flow: FourTuple,
        /// The response packet to write to the tunnel.
        packet: Packet,
    },
    /// A packet written to the tunnel is delivered to the app side.
    DeliverToApp(Packet),
}

/// Per-flow bookkeeping kept by the engine.
#[derive(Debug)]
struct FlowMeta {
    package: String,
    started_at: SimTime,
    finished_at: SimTime,
    bytes_received: usize,
    completed: bool,
    /// Network label carried by the flow spec (scenario-assigned); `None`
    /// falls back to the simulated access profile at measurement time.
    network: Option<NetKind>,
    /// ISP label carried by the flow spec.
    isp: Option<String>,
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunReport {
    /// RTT samples (TCP and DNS) with ground truth.
    ///
    /// Empty when the engine ran with `retain_samples: false` — the
    /// streaming [`RunReport::aggregates`] then carry the run's measurement
    /// content in constant memory.
    pub samples: Vec<RttSample>,
    /// Streaming aggregation of every RTT sample: mergeable quantile
    /// sketches keyed by (kind, network, app, domain, ISP), folded in at the
    /// measurement sink as samples are produced. Merged cross-shard exactly
    /// like the sample vector, and bit-identical for any shard count under
    /// the flow-keyed discipline.
    pub aggregates: AggregateStore,
    /// Relay counters.
    pub relay: RelayStats,
    /// Packet-to-app mapping statistics.
    pub mapping: MappingStats,
    /// Tunnel-write delay statistics.
    pub write_delays: WriteDelayStats,
    /// TUN device counters.
    pub tun: TunStats,
    /// CPU / memory / battery ledger.
    pub ledger: CpuLedger,
    /// Behaviour of the tunnel-packet buffer pool (allocations vs reuses).
    pub buffer_pool: PoolStats,
    /// Behaviour of the socket read-buffer pool.
    pub socket_read_pool: PoolStats,
    /// Per-flow outcomes.
    pub flows: Vec<FlowOutcome>,
    /// Virtual time at which the run finished.
    pub finished_at: SimTime,
    /// Events processed.
    pub events_processed: u64,
}

impl RunReport {
    /// TCP RTT samples only.
    pub fn tcp_samples(&self) -> Vec<&RttSample> {
        self.samples.iter().filter(|s| s.kind == SampleKind::Tcp).collect()
    }

    /// DNS RTT samples only.
    pub fn dns_samples(&self) -> Vec<&RttSample> {
        self.samples.iter().filter(|s| s.kind == SampleKind::Dns).collect()
    }

    /// Total response bytes delivered to apps divided by the busy interval,
    /// in Mbit/s — the downlink goodput seen through the relay.
    pub fn download_goodput_mbps(&self) -> Option<f64> {
        let total: usize = self.flows.iter().map(|f| f.bytes_received).sum();
        let start = self.flows.iter().map(|f| f.started_at).min()?;
        let end = self.flows.iter().map(|f| f.finished_at).max()?;
        let secs = (end - start).as_secs_f64();
        if secs <= 0.0 || total == 0 {
            return None;
        }
        Some(total as f64 * 8.0 / 1_000_000.0 / secs)
    }

    /// Mean absolute RTT error against the tcpdump reference, in ms.
    pub fn mean_tcp_error_ms(&self) -> Option<f64> {
        let errors: Vec<f64> = self.tcp_samples().iter().map(|s| s.error_ms()).collect();
        if errors.is_empty() {
            return None;
        }
        Some(errors.iter().sum::<f64>() / errors.len() as f64)
    }
}

enum Mapper {
    Eager(EagerMapper),
    Cached(CachedMapper),
    Lazy(LazyMapper),
}

impl Mapper {
    fn stats(&self) -> MappingStats {
        match self {
            Mapper::Eager(m) => m.stats().clone(),
            Mapper::Cached(m) => m.stats().clone(),
            Mapper::Lazy(m) => m.stats().clone(),
        }
    }
}

/// The MopEye relay engine.
pub struct MopEyeEngine {
    config: MopEyeConfig,
    clock: SimClock,
    net: SimNetwork,
    tun: TunDevice,
    reader: ReaderSim,
    writer: TunWriter,
    sockets: SocketSet,
    selector: Selector,
    clients: ClientRegistry,
    udp: UdpRegistry,
    conn_table: ConnectionTable,
    packages: PackageManager,
    mapper: Mapper,
    cost: CostModel,
    rng: SimRng,
    ledger: CpuLedger,
    /// Free list backing the per-packet tunnel buffers: TunReader fills a
    /// pooled buffer, MainWorker parses it by reference, then it is recycled.
    pool: BufferPool,
    /// Per-connection RNG streams (flow-keyed discipline). Keyed by the
    /// canonical four-tuple so both directions of a connection share one
    /// stream.
    flow_rngs: HashMap<FourTuple, SimRng>,
    /// Per-connection TunWriter timing lanes (flow-keyed discipline).
    writer_lanes: HashMap<FourTuple, WriterLane>,
    /// When the MainWorker frees up ([`WorkerModel::Saturating`] only).
    worker_busy_until: SimTime,
    queue: EventQueue<Event>,
    apps: HashMap<FourTuple, AppEndpoint>,
    dns_clients: HashMap<FourTuple, DnsClient>,
    flow_meta: HashMap<FourTuple, FlowMeta>,
    flow_registered_at: HashMap<FourTuple, SimTime>,
    socket_by_flow: HashMap<FourTuple, SocketId>,
    connect_pre_ts: HashMap<FourTuple, SimTime>,
    pending_half_close: HashSet<FourTuple>,
    ip_to_domain: HashMap<IpAddr, String>,
    samples: Vec<RttSample>,
    aggregates: AggregateStore,
    relay: RelayStats,
    next_app_port: u16,
    next_dns_id: u16,
    dns_pending: HashMap<FourTuple, (SimTime, String)>,
    events_processed: u64,
}

impl MopEyeEngine {
    /// Creates an engine over `net` with the given configuration.
    pub fn new(config: MopEyeConfig, net: SimNetwork) -> Self {
        let mut sockets = SocketSet::new();
        if config.protect == ProtectMode::DisallowedApplication {
            sockets.set_disallowed_application(true);
        }
        let mapper = match config.mapping {
            MappingStrategy::Eager => Mapper::Eager(EagerMapper::new()),
            MappingStrategy::Cached => Mapper::Cached(CachedMapper::new()),
            MappingStrategy::Lazy => Mapper::Lazy(LazyMapper::new()),
        };
        let rng = SimRng::seed_from_u64(config.seed);
        let reader = ReaderSim::new(config.read_strategy);
        let writer = TunWriter::new(config.write_scheme, config.enqueue_scheme);
        Self {
            reader,
            writer,
            sockets,
            mapper,
            rng,
            config,
            clock: SimClock::new(),
            net,
            tun: TunDevice::new(),
            selector: Selector::new(),
            clients: ClientRegistry::new(),
            udp: UdpRegistry::new(),
            conn_table: ConnectionTable::new(),
            packages: PackageManager::new(),
            cost: CostModel::android_phone(),
            ledger: CpuLedger::new(),
            pool: BufferPool::for_packets(),
            flow_rngs: HashMap::new(),
            writer_lanes: HashMap::new(),
            worker_busy_until: SimTime::ZERO,
            queue: EventQueue::new(),
            apps: HashMap::new(),
            dns_clients: HashMap::new(),
            flow_meta: HashMap::new(),
            flow_registered_at: HashMap::new(),
            socket_by_flow: HashMap::new(),
            connect_pre_ts: HashMap::new(),
            pending_half_close: HashSet::new(),
            ip_to_domain: HashMap::new(),
            samples: Vec::new(),
            aggregates: AggregateStore::new(),
            relay: RelayStats::default(),
            next_app_port: 36_000,
            next_dns_id: 1,
            dns_pending: HashMap::new(),
            events_processed: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MopEyeConfig {
        &self.config
    }

    /// Access to the underlying network (e.g. to inspect the wire tap).
    pub fn network(&self) -> &SimNetwork {
        &self.net
    }

    /// Runs a set of workloads to completion and reports.
    pub fn run(&mut self, workloads: &[Workload]) -> RunReport {
        let mut flows = Vec::new();
        let mut wl_rng = self.rng.fork("workloads");
        for workload in workloads {
            self.packages.install(workload.uid, &workload.package);
            flows.extend(workload.generate(&mut wl_rng));
        }
        self.run_flows(flows)
    }

    /// Runs an explicit list of flows to completion and reports.
    pub fn run_flows(&mut self, flows: Vec<FlowSpec>) -> RunReport {
        self.reserve_flows(flows.len());
        for spec in flows {
            self.packages.install(spec.uid, &spec.package);
            self.queue.schedule(spec.at, Event::FlowStart(spec));
        }
        let max_events = self.config.max_events;
        while let Some((at, event)) = self.queue.pop() {
            self.clock.advance_to(at);
            self.events_processed += 1;
            if self.events_processed > max_events {
                break;
            }
            self.handle(at, event);
        }
        self.report()
    }

    /// Pre-sizes the per-flow tables for `flows` concurrent connections, so
    /// a fleet-scale run pays its table growth up front rather than on the
    /// packet path.
    pub fn reserve_flows(&mut self, flows: usize) {
        self.apps.reserve(flows);
        self.flow_meta.reserve(flows);
        self.flow_registered_at.reserve(flows);
        self.socket_by_flow.reserve(flows);
        if self.config.discipline == EngineDiscipline::FlowKeyed {
            self.flow_rngs.reserve(flows);
            self.writer_lanes.reserve(flows);
        }
    }

    // ----- flow-keyed state -----------------------------------------------

    /// Checks out the RNG stream backing `flow`'s noise: the device-wide
    /// stream under [`EngineDiscipline::SharedDevice`], the flow's own
    /// stream (seeded from `config.seed ^ hash(flow)`) under
    /// [`EngineDiscipline::FlowKeyed`]. Pair with
    /// [`MopEyeEngine::checkin_rng`].
    fn checkout_rng(&mut self, flow: FourTuple) -> SimRng {
        match self.config.discipline {
            EngineDiscipline::SharedDevice => {
                std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0))
            }
            EngineDiscipline::FlowKeyed => {
                let key = flow.canonical();
                self.flow_rngs.remove(&key).unwrap_or_else(|| {
                    SimRng::seed_from_u64(
                        self.config.seed ^ key.stable_hash() ^ ENGINE_KEY_SALT,
                    )
                })
            }
        }
    }

    /// Returns a stream checked out with [`MopEyeEngine::checkout_rng`].
    fn checkin_rng(&mut self, flow: FourTuple, rng: SimRng) {
        match self.config.discipline {
            EngineDiscipline::SharedDevice => self.rng = rng,
            EngineDiscipline::FlowKeyed => {
                self.flow_rngs.insert(flow.canonical(), rng);
            }
        }
    }

    /// [`MopEyeEngine::checkout_rng`] for packets whose four-tuple may be
    /// absent (malformed or non-IP): those fall back to the shared stream.
    fn checkout_rng_opt(&mut self, flow: Option<FourTuple>) -> SimRng {
        match flow {
            Some(flow) => self.checkout_rng(flow),
            None => std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0)),
        }
    }

    /// Returns a stream checked out with [`MopEyeEngine::checkout_rng_opt`].
    fn checkin_rng_opt(&mut self, flow: Option<FourTuple>, rng: SimRng) {
        match flow {
            Some(flow) => self.checkin_rng(flow, rng),
            None => self.rng = rng,
        }
    }

    /// The start time of a MainWorker processing step that costs `cost`:
    /// immediate under [`WorkerModel::Unbounded`]; queued behind the worker's
    /// backlog (and occupying it) under [`WorkerModel::Saturating`].
    fn worker_start(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        match self.config.worker {
            WorkerModel::Unbounded => now,
            WorkerModel::Saturating => {
                let start = now.max(self.worker_busy_until);
                self.worker_busy_until = start + cost;
                start
            }
        }
    }

    /// The measurement sink: folds a finished sample into the streaming
    /// aggregates (constant memory) and, unless the run opted out, retains
    /// the raw sample too.
    ///
    /// The aggregation labels come from the flow's spec where the scenario
    /// assigned them; otherwise the network kind falls back to the simulated
    /// access profile at measurement time and the ISP label stays empty. The
    /// synthetic "device" is the flow's source address, which fleet
    /// scenarios assign uniquely per simulated user.
    fn record_sample(&mut self, sample: RttSample) {
        let kind = match sample.kind {
            SampleKind::Tcp => MeasurementKind::Tcp,
            SampleKind::Dns => MeasurementKind::Dns,
        };
        let meta = self.flow_meta.get(&sample.flow);
        let network = meta.and_then(|m| m.network).unwrap_or_else(|| {
            net_kind_of(self.net.access_at(sample.at).network_type)
        });
        let isp = meta.and_then(|m| m.isp.as_deref()).unwrap_or("");
        self.aggregates.observe_parts(
            kind,
            network,
            sample.package.as_deref().unwrap_or(""),
            sample.domain.as_deref().unwrap_or(""),
            isp,
            device_of(sample.flow.src.addr),
            "",
            sample.measured_ms,
        );
        if self.config.retain_samples {
            self.samples.push(sample);
        }
    }

    fn report(&mut self) -> RunReport {
        let flows = self
            .flow_meta
            .iter()
            .map(|(flow, meta)| FlowOutcome {
                flow: *flow,
                package: meta.package.clone(),
                started_at: meta.started_at,
                finished_at: meta.finished_at,
                bytes_received: meta.bytes_received,
                completed: meta.completed,
            })
            .collect();
        RunReport {
            samples: std::mem::take(&mut self.samples),
            aggregates: std::mem::take(&mut self.aggregates),
            relay: std::mem::take(&mut self.relay),
            mapping: self.mapper.stats(),
            write_delays: self.writer.stats().clone(),
            tun: self.tun.stats(),
            ledger: self.ledger.clone(),
            buffer_pool: self.pool.stats(),
            socket_read_pool: self.sockets.read_pool_stats(),
            flows,
            finished_at: self.clock.now(),
            events_processed: self.events_processed,
        }
    }

    // ----- event handling -------------------------------------------------

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::FlowStart(spec) => self.on_flow_start(now, spec),
            Event::ProcessTunPacket(buf) => self.on_process_tun_packet(now, buf),
            Event::ExternalConnected(flow) => self.on_external_connected(now, flow),
            Event::SocketReadable(flow) => self.on_socket_readable(now, flow),
            Event::DnsResponse { flow, packet } => self.on_dns_response(now, flow, packet),
            Event::DeliverToApp(packet) => self.on_deliver_to_app(now, packet),
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let port = self.next_app_port;
        self.next_app_port = if self.next_app_port >= 64_000 { 36_000 } else { self.next_app_port + 1 };
        port
    }

    fn on_flow_start(&mut self, now: SimTime, spec: FlowSpec) {
        // Fleet scenarios pre-assign the source endpoint so the four-tuple is
        // a pure function of the spec; single-device flows draw from the
        // engine's sequential port pool.
        let src = match spec.src {
            Some(src) => src,
            None => Endpoint::v4(10, 0, 0, 2, self.alloc_port()),
        };
        match spec.kind {
            FlowKind::Tcp => {
                let flow = FourTuple::new(src, spec.dst);
                let mut app = AppEndpoint::new(
                    spec.uid,
                    &spec.package,
                    flow,
                    vec![0x47; spec.request_bytes.max(1)],
                    spec.close_after,
                );
                let syn = app.syn_packet();
                self.apps.insert(flow, app);
                self.flow_meta.insert(
                    flow,
                    FlowMeta {
                        package: spec.package.clone(),
                        started_at: now,
                        finished_at: now,
                        bytes_received: 0,
                        completed: false,
                        network: spec.network,
                        isp: spec.isp.clone(),
                    },
                );
                self.conn_table.register(flow, true, spec.uid, SocketStateCode::SynSent);
                self.flow_registered_at.insert(flow, now);
                if let Some(domain) = &spec.domain {
                    self.ip_to_domain.insert(spec.dst.addr, domain.clone());
                }
                self.inject_app_packet(now, syn);
            }
            FlowKind::Dns => {
                let resolver = Endpoint::new(self.net.dns_config().addr, 53);
                let flow = FourTuple::new(src, resolver);
                let id = self.next_dns_id;
                self.next_dns_id = self.next_dns_id.wrapping_add(1).max(1);
                let name = spec.domain.clone().unwrap_or_else(|| "unknown.example".to_string());
                let client = DnsClient::new(spec.uid, &spec.package, src, resolver, id, &name);
                let query = client.query_packet();
                self.dns_clients.insert(flow, client);
                self.flow_meta.insert(
                    flow,
                    FlowMeta {
                        package: spec.package.clone(),
                        started_at: now,
                        finished_at: now,
                        bytes_received: 0,
                        completed: false,
                        network: spec.network,
                        isp: spec.isp.clone(),
                    },
                );
                self.conn_table.register(flow, false, spec.uid, SocketStateCode::Close);
                self.flow_registered_at.insert(flow, now);
                self.inject_app_packet(now, query);
            }
        }
    }

    /// An app wrote a packet into the tunnel: the raw IP bytes land in a
    /// pooled buffer, the TunReader's retrieval is simulated and the buffer
    /// is handed to the MainWorker. This mirrors the real datapath — the TUN
    /// device hands MopEye bytes, not parsed structures — and recycles the
    /// buffer once the MainWorker has processed it.
    fn inject_app_packet(&mut self, at: SimTime, packet: Packet) {
        let flow_key = packet.four_tuple();
        let mut buf = self.pool.get();
        packet.encode_into(&mut buf);
        self.tun.record_app_write(buf.len());
        let mut rng = self.checkout_rng_opt(flow_key);
        let retrieval = self.reader.retrieve(at, &self.cost, &mut rng);
        self.ledger.charge("TunReader", retrieval.polling_cpu + self.cost.tun_read.sample(&mut rng));
        // TunReader puts the packet in the read queue and wakes the selector
        // so MainWorker notices it (§3.2).
        self.selector.wakeup();
        let handoff = self.cost.context_switch.sample(&mut rng);
        self.checkin_rng_opt(flow_key, rng);
        self.queue.schedule(retrieval.retrieved_at + handoff, Event::ProcessTunPacket(buf));
    }

    /// Writes a packet towards the apps through the TunWriter and schedules
    /// its delivery. The one owned packet travels straight into the delivery
    /// event; the device and the writer only see its wire length.
    ///
    /// Under the shared-device discipline every packet goes through the one
    /// writer-thread timing lane (queue serialisation couples flows, as on a
    /// real handset). Under the flow-keyed discipline each connection has its
    /// own lane and a fixed concurrent-writer count, so the write timing of a
    /// flow depends only on that flow's own packet train.
    fn write_to_tunnel(&mut self, now: SimTime, packet: Packet) {
        let flow_key = packet.four_tuple();
        let mut rng = self.checkout_rng_opt(flow_key);
        let outcome = match self.config.discipline {
            EngineDiscipline::SharedDevice => {
                let writers = 1 + usize::from(!self.connect_pre_ts.is_empty());
                self.writer.submit(now, writers, &self.cost, &mut rng, &mut self.ledger)
            }
            EngineDiscipline::FlowKeyed => {
                let key = flow_key.map(|f| f.canonical());
                let mut lane = key
                    .and_then(|k| self.writer_lanes.get(&k).copied())
                    .unwrap_or_default();
                let outcome = self.writer.submit_lane(
                    &mut lane,
                    now,
                    2,
                    &self.cost,
                    &mut rng,
                    &mut self.ledger,
                );
                if let Some(k) = key {
                    self.writer_lanes.insert(k, lane);
                }
                outcome
            }
        };
        self.checkin_rng_opt(flow_key, rng);
        self.tun.record_relay_write(packet.wire_len());
        self.queue.schedule(outcome.written_at, Event::DeliverToApp(packet));
    }

    fn timestamp(&self, t: SimTime) -> SimTime {
        match self.config.clock {
            ClockGranularity::Nanosecond => t,
            ClockGranularity::Millisecond => self.cost.coarse_timestamp(t),
        }
    }

    fn domain_for(&self, addr: IpAddr) -> Option<String> {
        if let Some(d) = self.ip_to_domain.get(&addr) {
            return Some(d.clone());
        }
        self.net.server_for(addr).and_then(|s| s.domains.first().cloned())
    }

    fn on_process_tun_packet(&mut self, now: SimTime, buf: Vec<u8>) {
        match PacketView::parse(&buf) {
            Ok(packet) => {
                // MainWorker parses the IP/TCP headers: a small per-packet
                // cost, drawn from the flow's stream and — under the
                // saturating worker model — occupying the worker, so packets
                // arriving faster than it drains them queue behind it.
                let flow_key = packet.four_tuple();
                let mut rng = self.checkout_rng_opt(flow_key);
                let parse_cost = SimDuration::from_micros(rng.int_inclusive(4, 25));
                self.checkin_rng_opt(flow_key, rng);
                self.ledger.charge("MainWorker", parse_cost);
                let start = self.worker_start(now, parse_cost);
                self.relay_tun_packet(start, &packet);
            }
            Err(_) => self.relay.parse_errors += 1,
        }
        self.pool.put(buf);
    }

    /// The MainWorker's relay decision, working entirely on borrowed views —
    /// no payload is copied unless data actually has to cross to the socket
    /// channel.
    fn relay_tun_packet(&mut self, now: SimTime, packet: &PacketView<'_>) {
        if matches!(packet.transport(), TransportView::Other(..)) {
            // A well-formed packet of an unsupported transport: forwarded
            // opaquely, nothing to measure and nothing to count as an error.
            return;
        }
        let Some(flow) = packet.four_tuple() else {
            self.relay.parse_errors += 1;
            return;
        };
        match packet.transport() {
            TransportView::Tcp(segment) => {
                let client = self.clients.get_or_create(flow);
                let (packets, actions, verdict) =
                    client.machine_mut().on_tunnel_segment_view(segment);
                match verdict {
                    SegmentVerdict::Syn => self.relay.syns += 1,
                    SegmentVerdict::Data(len) => {
                        self.relay.data_segments_out += 1;
                        self.relay.bytes_out += len as u64;
                    }
                    SegmentVerdict::PureAckDiscarded => self.relay.pure_acks_discarded += 1,
                    SegmentVerdict::Fin => self.relay.fins += 1,
                    SegmentVerdict::Rst => self.relay.rsts += 1,
                    SegmentVerdict::Retransmission | SegmentVerdict::OutOfState => {}
                }
                for pkt in packets {
                    self.write_to_tunnel(now, pkt);
                }
                for action in actions {
                    self.apply_action(now, flow, action);
                }
                // A torn-down connection's tail (the app's final ACK after
                // RemoveClient already ran) lands on a freshly created
                // machine and is discarded; the machine is still in Listen
                // because only a SYN moves it off. Drop that zombie client
                // and the keyed state the tail packet recreated, so a fleet
                // run's memory tracks live connections. (Flow-keyed only:
                // the single-device engine keeps its historical behaviour
                // bit-for-bit.)
                if self.config.discipline == EngineDiscipline::FlowKeyed
                    && self
                        .clients
                        .get(flow)
                        .is_some_and(|c| c.state() == mop_tcpstack::TcpState::Listen)
                {
                    self.clients.remove(flow);
                    self.release_flow_state(flow);
                }
                self.update_memory_ledger();
            }
            TransportView::Udp(datagram) => {
                self.relay.udp_datagrams += 1;
                let assoc = self.udp.get_or_create(flow);
                let transaction = assoc.on_outgoing(datagram.payload(), now.as_nanos()).cloned();
                if let Some(tx) = transaction {
                    self.relay.dns_queries += 1;
                    self.start_dns_measurement(now, flow, tx.id, &tx.name);
                }
            }
            TransportView::Other(..) => unreachable!("handled before the four-tuple guard"),
        }
    }

    fn apply_action(&mut self, now: SimTime, flow: FourTuple, action: RelayAction) {
        match action {
            RelayAction::ConnectExternal { dst } => self.start_connect(now, flow, dst),
            RelayAction::RelayData { bytes } => self.relay_data(now, flow, &bytes),
            RelayAction::HalfCloseExternal => self.half_close(now, flow),
            RelayAction::CloseExternal => self.close_external(flow),
            RelayAction::RemoveClient => self.remove_client(now, flow),
        }
    }

    /// The socket-connect thread (§2.4): blocking connect with clean
    /// timestamps, then lazy mapping and selector registration.
    fn start_connect(&mut self, now: SimTime, flow: FourTuple, dst: Endpoint) {
        let mut rng = self.checkout_rng(flow);
        let spawn = self.cost.thread_spawn.sample(&mut rng);
        self.ledger.charge("ConnectThreads", spawn);
        let mut t = now + spawn;
        if self.config.protect == ProtectMode::PerSocket {
            let protect = self.cost.protect_call.sample(&mut rng);
            self.ledger.charge("ConnectThreads", protect);
            t += protect;
        }
        self.checkin_rng(flow, rng);
        // Flow-keyed runs bind the external socket to the app flow's source,
        // so the external four-tuple (which keys the network's per-flow RNG
        // stream and the wire tap) is a pure function of the flow rather
        // than of socket-creation order.
        let socket = match self.config.discipline {
            EngineDiscipline::SharedDevice => self.sockets.create(SocketMode::Blocking),
            EngineDiscipline::FlowKeyed => {
                self.sockets.create_bound(SocketMode::Blocking, flow.src)
            }
        };
        if self.config.protect == ProtectMode::PerSocket {
            self.sockets.protect(socket);
        }
        // Pre-connect timestamp, taken immediately before connect() (§4.1.1).
        self.connect_pre_ts.insert(flow, self.timestamp(t));
        let outcome = self.sockets.connect(&mut self.net, socket, dst, t);
        self.socket_by_flow.insert(flow, socket);
        if let Some(client) = self.clients.get_mut(flow) {
            client.attach_external(socket.to_string().trim_start_matches("sock#").parse().unwrap_or(0));
            client.connect_started_ns = Some(t.as_nanos());
        }
        self.queue.schedule(outcome.completed_at, Event::ExternalConnected(flow));
    }

    fn on_external_connected(&mut self, now: SimTime, flow: FourTuple) {
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        let state = self.sockets.poll_connect(socket, now);
        let pre = self.connect_pre_ts.remove(&flow).unwrap_or(now);
        let mut rng = self.checkout_rng(flow);
        // Post-connect timestamp: exact in the blocking connect thread, or
        // delayed by the selector dispatch when taken from the event loop.
        let mut post = now;
        if self.config.timestamp_mode == TimestampMode::SelectorNotification {
            post += self.cost.sample_dispatch_delay(&mut rng);
        }
        let post = self.timestamp(post);
        let outcome = self.sockets.connect_outcome(socket);
        match state {
            SocketState::Connected => {
                self.relay.connects_ok += 1;
                // Register the channel with the selector only after the
                // internal handshake work is done (§3.4). The cost is drawn
                // from the flow's stream before the mapper runs, because the
                // mapper's draw count depends on the co-resident connection
                // table and must not advance this stream.
                let register = self.cost.selector_register.sample(&mut rng);
                self.checkin_rng(flow, rng);
                // Lazy mapping happens here, in the connect thread, after the
                // handshake with the server is complete (§3.3).
                let (uid, package) = self.map_flow(flow, now);
                if let Some(client) = self.clients.get_mut(flow) {
                    client.connect_finished_ns = Some(now.as_nanos());
                    client.app_uid = uid;
                    client.app_package = package.clone();
                }
                self.ledger.charge("ConnectThreads", register);
                self.selector.register(socket);
                self.sockets.set_mode(socket, SocketMode::NonBlocking);
                self.conn_table.set_state(flow, SocketStateCode::Established);
                // Record the per-app RTT sample.
                let tcpdump_ms = self
                    .sockets
                    .flow(socket)
                    .and_then(|f| self.net.tap().handshake_rtt(f))
                    .map(|d| d.as_millis_f64());
                self.record_sample(RttSample {
                    kind: SampleKind::Tcp,
                    flow,
                    uid,
                    package,
                    domain: self.domain_for(flow.dst.addr),
                    measured_ms: (post - pre).as_millis_f64(),
                    true_ms: outcome.map(|o| o.true_rtt.as_millis_f64()).unwrap_or(0.0),
                    tcpdump_ms,
                    at: now,
                });
                // Complete the handshake with the app (§2.3).
                if let Some(client) = self.clients.get_mut(flow) {
                    let packets = client.machine_mut().on_external_connected();
                    for pkt in packets {
                        self.write_to_tunnel(now, pkt);
                    }
                }
            }
            SocketState::ConnectFailed { refused } => {
                self.checkin_rng(flow, rng);
                self.relay.connects_failed += 1;
                if let Some(client) = self.clients.get_mut(flow) {
                    let packets = client.machine_mut().on_external_connect_failed(refused);
                    for pkt in packets {
                        self.write_to_tunnel(now, pkt);
                    }
                }
                self.finish_flow(flow, now, false);
            }
            _ => self.checkin_rng(flow, rng),
        }
    }

    fn map_flow(&mut self, flow: FourTuple, now: SimTime) -> (Option<u32>, Option<String>) {
        let registered_at = self.flow_registered_at.get(&flow).copied().unwrap_or(now);
        // The mapper's draw count scales with the connection table (a
        // `/proc/net` parse samples a cost per entry), and the table holds
        // whatever flows happen to be co-resident. Under the flow-keyed
        // discipline those draws come from a throwaway stream derived for
        // this flow, so they cannot perturb any flow's main stream; only the
        // CPU ledger sees the variance.
        let mut keyed_rng;
        let rng: &mut SimRng = match self.config.discipline {
            EngineDiscipline::SharedDevice => &mut self.rng,
            EngineDiscipline::FlowKeyed => {
                keyed_rng = SimRng::seed_from_u64(
                    self.config.seed ^ flow.canonical().stable_hash() ^ MAPPING_KEY_SALT,
                );
                &mut keyed_rng
            }
        };
        let outcome = match &mut self.mapper {
            Mapper::Eager(m) => m.map(&self.conn_table, &self.cost, rng, flow),
            Mapper::Cached(m) => m.map(&self.conn_table, &self.cost, rng, flow),
            Mapper::Lazy(m) => {
                m.map(&self.conn_table, &self.cost, rng, flow, registered_at, now)
            }
        };
        let lookup_cost = outcome
            .uid
            .map(|_| SimDuration::from_millis_f64(self.cost.package_lookup.sample_ms(rng)));
        let charge_to = match self.config.mapping {
            MappingStrategy::Lazy => "ConnectThreads",
            _ => "MainWorker",
        };
        self.ledger.charge(charge_to, outcome.cpu_cost);
        let package = outcome.uid.and_then(|uid| {
            self.ledger.charge(charge_to, lookup_cost.unwrap_or(SimDuration::ZERO));
            self.packages.name_for_uid_cached(uid)
        });
        (outcome.uid, package)
    }

    fn relay_data(&mut self, now: SimTime, flow: FourTuple, bytes: &[u8]) {
        if self.config.content_inspection {
            let mut rng = self.checkout_rng(flow);
            let inspect = self.cost.sample_content_inspection(bytes.len(), &mut rng);
            self.checkin_rng(flow, rng);
            self.ledger.charge("Inspection", inspect);
        }
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        if !matches!(
            self.sockets.state(socket),
            SocketState::Connected | SocketState::HalfClosed
        ) {
            return;
        }
        self.sockets.buffer_write(socket, bytes.len());
        self.sockets.flush_writes(&mut self.net, socket, now);
        // The socket write completes locally; acknowledge the app's data.
        if let Some(client) = self.clients.get_mut(flow) {
            let packets = client.machine_mut().on_external_write_complete();
            for pkt in packets {
                self.write_to_tunnel(now, pkt);
            }
        }
        if let Some(ready_at) = self.sockets.next_read_ready_at(socket) {
            self.queue.schedule(ready_at.max(now), Event::SocketReadable(flow));
        }
    }

    fn on_socket_readable(&mut self, now: SimTime, flow: FourTuple) {
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        // The socket layer hands out a pooled buffer for the readable bytes,
        // so the read loop performs no per-read allocation in steady state.
        let data = self.sockets.take_readable_pooled(socket, now);
        let total = data.len();
        if total > 0 {
            let mut rng = self.checkout_rng(flow);
            if self.config.content_inspection {
                let inspect = self.cost.sample_content_inspection(total, &mut rng);
                self.ledger.charge("Inspection", inspect);
            }
            let segment_cost = SimDuration::from_micros(rng.int_inclusive(10, 60));
            self.checkin_rng(flow, rng);
            self.ledger.charge("MainWorker", segment_cost);
            // Segmenting server data back towards the app is MainWorker
            // work: under the saturating model it queues behind the backlog.
            let start = self.worker_start(now, segment_cost);
            if let Some(client) = self.clients.get_mut(flow) {
                let packets = client.machine_mut().on_external_data(&data);
                self.relay.data_segments_in += packets.len() as u64;
                self.relay.bytes_in += total as u64;
                for pkt in packets {
                    self.write_to_tunnel(start, pkt);
                }
            }
        }
        self.sockets.recycle_buffer(data);
        if let Some(next) = self.sockets.next_read_ready_at(socket) {
            self.queue.schedule(next, Event::SocketReadable(flow));
        } else if self.pending_half_close.contains(&flow) {
            self.finish_half_close(now, flow);
        }
    }

    fn half_close(&mut self, now: SimTime, flow: FourTuple) {
        let Some(&socket) = self.socket_by_flow.get(&flow) else { return };
        self.sockets.half_close(socket);
        if self.sockets.read_exhausted(socket) {
            self.finish_half_close(now, flow);
        } else {
            self.pending_half_close.insert(flow);
        }
    }

    /// The half-close write event: close the external connection and send a
    /// FIN to the app (§2.3, socket-write handling).
    fn finish_half_close(&mut self, now: SimTime, flow: FourTuple) {
        self.pending_half_close.remove(&flow);
        if let Some(&socket) = self.socket_by_flow.get(&flow) {
            self.sockets.close(socket);
            self.selector.deregister(socket);
        }
        if let Some(client) = self.clients.get_mut(flow) {
            let packets = client.machine_mut().on_external_closed(false);
            for pkt in packets {
                self.write_to_tunnel(now, pkt);
            }
        }
    }

    fn close_external(&mut self, flow: FourTuple) {
        if let Some(&socket) = self.socket_by_flow.get(&flow) {
            self.sockets.close(socket);
            self.selector.deregister(socket);
        }
        self.conn_table.remove(flow);
    }

    fn remove_client(&mut self, now: SimTime, flow: FourTuple) {
        self.clients.remove(flow);
        self.conn_table.remove(flow);
        self.finish_flow(flow, now, true);
        self.release_flow_state(flow);
        self.update_memory_ledger();
    }

    /// Evicts a finished flow's keyed stochastic state (RNG stream, writer
    /// lane, network context), so shard memory is bounded by *concurrent*
    /// flows, not by every flow a fleet run has ever seen.
    ///
    /// Safe for determinism: if a stray late packet recreates the state, the
    /// fresh stream restarts from the flow's seed — still a pure function of
    /// `(seed, four-tuple)`, so every shard count recreates it identically.
    fn release_flow_state(&mut self, flow: FourTuple) {
        if self.config.discipline == EngineDiscipline::FlowKeyed {
            let key = flow.canonical();
            self.flow_rngs.remove(&key);
            self.writer_lanes.remove(&key);
            self.net.release_flow(flow);
        }
    }

    fn finish_flow(&mut self, flow: FourTuple, now: SimTime, completed: bool) {
        if let Some(meta) = self.flow_meta.get_mut(&flow) {
            meta.finished_at = now;
            meta.completed = completed;
            if let Some(app) = self.apps.get(&flow) {
                meta.bytes_received = app.bytes_received;
            }
        }
    }

    // ----- DNS ------------------------------------------------------------

    fn start_dns_measurement(&mut self, now: SimTime, flow: FourTuple, id: u16, name: &str) {
        // The whole DNS processing runs in a temporary blocking-mode thread
        // (§2.4): socket set-up, then a blocking send/receive pair.
        let mut rng = self.checkout_rng(flow);
        let spawn = self.cost.thread_spawn.sample(&mut rng);
        self.checkin_rng(flow, rng);
        self.ledger.charge("DnsThreads", spawn);
        let send_at = now + spawn;
        let outcome = self.net.dns_lookup(flow.src, name, send_at);
        self.dns_pending.insert(flow, (self.timestamp(send_at), name.to_string()));
        for addr in &outcome.addrs {
            self.ip_to_domain.insert(IpAddr::V4(*addr), name.to_string());
        }
        let Some(response_at) = outcome.response_at else {
            // Query lost: the app sees a timeout; nothing is measured.
            self.finish_flow(flow, send_at, false);
            return;
        };
        // Build the response datagram the relay writes back to the app.
        let query = DnsMessage::query(id, name);
        let response = if outcome.nxdomain {
            DnsMessage::nxdomain(&query)
        } else {
            DnsMessage::answer(&query, &outcome.addrs, 300)
        };
        let to_app = PacketBuilder::new(flow.dst, flow.src).dns(&response);
        self.queue.schedule(response_at, Event::DnsResponse { flow, packet: to_app });
    }

    fn on_dns_response(&mut self, now: SimTime, flow: FourTuple, packet: Packet) {
        let Some((sent_ts, name)) = self.dns_pending.remove(&flow) else { return };
        let post = self.timestamp(now);
        let uid = self.conn_table.uid_of(flow);
        let package = uid.and_then(|u| self.packages.name_for_uid_cached(u));
        let tcpdump_ms = self.net.tap().dns_rtt(flow).map(|d| d.as_millis_f64());
        self.record_sample(RttSample {
            kind: SampleKind::Dns,
            flow,
            uid,
            package,
            domain: Some(name),
            measured_ms: (post - sent_ts).as_millis_f64(),
            true_ms: tcpdump_ms.unwrap_or_else(|| (post - sent_ts).as_millis_f64()),
            tcpdump_ms,
            at: now,
        });
        // Record the inbound datagram on the UDP association and forward it.
        let reply_flow = flow;
        if let Some(assoc) = self.udp.get(reply_flow) {
            let _ = assoc;
        }
        self.write_to_tunnel(now, packet);
        // The DNS exchange is complete; its keyed state will not be used
        // again (the response delivery draws nothing).
        self.release_flow_state(flow);
    }

    // ----- app side -------------------------------------------------------

    fn on_deliver_to_app(&mut self, now: SimTime, packet: Packet) {
        let Some(reverse) = packet.four_tuple() else { return };
        let flow = reverse.reversed();
        if let Some(client) = self.dns_clients.get_mut(&flow) {
            if client.handle(&packet) {
                if let Some(meta) = self.flow_meta.get_mut(&flow) {
                    meta.finished_at = now;
                    meta.completed = true;
                }
            }
            return;
        }
        if let Some(app) = self.apps.get_mut(&flow) {
            let responses = app.handle(&packet);
            let bytes_received = app.bytes_received;
            // Only a clean close counts as completion; a reset app stays failed.
            let done_cleanly = app.state() == mop_tun::AppState::Done;
            if let Some(meta) = self.flow_meta.get_mut(&flow) {
                meta.bytes_received = bytes_received;
                meta.finished_at = now;
                if done_cleanly {
                    meta.completed = true;
                }
            }
            for (i, response) in responses.into_iter().enumerate() {
                // Consecutive packets from the app leave a few microseconds apart.
                let at = now + SimDuration::from_micros(20 * (i as u64 + 1));
                self.inject_app_packet(at, response);
            }
        }
    }

    fn update_memory_ledger(&mut self) {
        // Each live client holds a 64 KiB read and a 64 KiB write buffer
        // (§3.4); the engine itself has a fixed footprint. Content inspection
        // keeps reassembled flow buffers that dwarf the relay's own state.
        let clients = self.clients.len();
        let base = 6 * 1024 * 1024;
        let buffers = clients * 2 * 65_535;
        self.ledger.set_memory("relay", base + buffers);
        if self.config.content_inspection {
            self.ledger.set_memory("inspection", 120 * 1024 * 1024 + clients * 1024 * 1024);
        }
    }
}

/// Maps the simulator's access-network technology onto the measurement
/// schema's independent [`NetKind`] (the two enums are deliberately distinct:
/// records could come from a real deployment).
fn net_kind_of(network_type: mop_simnet::NetworkType) -> NetKind {
    match network_type {
        mop_simnet::NetworkType::Wifi => NetKind::Wifi,
        mop_simnet::NetworkType::Lte => NetKind::Lte,
        mop_simnet::NetworkType::Umts3g => NetKind::Umts3g,
        mop_simnet::NetworkType::Gprs2g => NetKind::Gprs2g,
    }
}

/// The synthetic device identifier of a flow: its source address folded to a
/// `u32`. Fleet scenarios assign each simulated user a unique source address,
/// so this is a stable per-user id; the single-device engine maps everything
/// to the one handset address.
fn device_of(addr: IpAddr) -> u32 {
    match addr {
        IpAddr::V4(v4) => u32::from(v4),
        IpAddr::V6(v6) => v6
            .octets()
            .chunks_exact(4)
            .fold(0u32, |acc, c| {
                acc.rotate_left(9) ^ u32::from_be_bytes([c[0], c[1], c[2], c[3]])
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_simnet::{LatencyModel, ServerConfig, Service};
    use mop_tun::WorkloadKind;

    fn network() -> SimNetwork {
        SimNetwork::builder().seed(42).with_table2_destinations().build()
    }

    fn google() -> Endpoint {
        Endpoint::v4(216, 58, 221, 132, 443)
    }

    fn one_flow(request: usize, close_after: usize) -> FlowSpec {
        FlowSpec {
            at: SimTime::from_millis(10),
            uid: 10_100,
            package: "com.android.chrome".into(),
            src: None,
            dst: google(),
            domain: Some("www.google.com".into()),
            request_bytes: request,
            close_after,
            kind: FlowKind::Tcp,
            network: None,
            isp: None,
        }
    }

    #[test]
    fn single_tcp_flow_completes_and_is_measured() {
        let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
        let report = engine.run_flows(vec![one_flow(400, 8 * 1024)]);
        assert_eq!(report.relay.syns, 1);
        assert_eq!(report.relay.connects_ok, 1);
        assert_eq!(report.relay.connects_failed, 0);
        assert!(report.relay.data_segments_in > 0);
        assert!(report.relay.pure_acks_discarded >= 1);
        assert_eq!(report.flows.len(), 1);
        let flow = &report.flows[0];
        assert!(flow.completed, "flow should finish cleanly");
        assert_eq!(flow.bytes_received, 32 * 1024, "full web response delivered");
        assert_eq!(flow.package, "com.android.chrome");
        // One TCP RTT sample with tight accuracy.
        let samples = report.tcp_samples();
        assert_eq!(samples.len(), 1);
        let s = samples[0];
        assert_eq!(s.package.as_deref(), Some("com.android.chrome"));
        assert_eq!(s.domain.as_deref(), Some("www.google.com"));
        assert!(s.error_ms() < 1.0, "MopEye accuracy should be sub-millisecond, got {}", s.error_ms());
        assert!(s.measured_ms > 1.0, "google RTT should be positive, got {}", s.measured_ms);
    }

    #[test]
    fn dns_flow_is_measured_and_answered() {
        let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
        let spec = FlowSpec {
            at: SimTime::from_millis(5),
            uid: 10_100,
            package: "com.android.chrome".into(),
            src: None,
            dst: Endpoint::v4(192, 168, 1, 1, 53),
            domain: Some("www.google.com".into()),
            request_bytes: 0,
            close_after: 0,
            kind: FlowKind::Dns,
            network: None,
            isp: None,
        };
        let report = engine.run_flows(vec![spec]);
        assert_eq!(report.relay.dns_queries, 1);
        let samples = report.dns_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].domain.as_deref(), Some("www.google.com"));
        assert!(samples[0].measured_ms > 1.0);
        assert!(samples[0].error_ms() < 1.5, "dns error {}", samples[0].error_ms());
        assert!(report.flows[0].completed);
    }

    #[test]
    fn refused_destination_fails_the_flow() {
        let mut net = network();
        net.add_server(ServerConfig::new(
            "closed",
            "10.7.7.7".parse().unwrap(),
            LatencyModel::constant(20.0),
            Service::Refuse,
        ));
        let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);
        let mut spec = one_flow(100, 0);
        spec.dst = Endpoint::v4(10, 7, 7, 7, 80);
        spec.domain = None;
        let report = engine.run_flows(vec![spec]);
        assert_eq!(report.relay.connects_failed, 1);
        assert_eq!(report.relay.connects_ok, 0);
        assert!(!report.flows[0].completed);
        assert!(report.tcp_samples().is_empty(), "failed connects produce no RTT sample");
    }

    #[test]
    fn web_browsing_workload_produces_many_accurate_samples() {
        let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
        let workload = Workload::new(
            WorkloadKind::WebBrowsing,
            10_100,
            "com.android.chrome",
            vec![
                (google(), "www.google.com".into()),
                (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
            ],
            SimDuration::from_secs(30),
            5,
        );
        let report = engine.run(&[workload]);
        assert!(report.relay.syns >= 30, "syns {}", report.relay.syns);
        assert_eq!(report.relay.syns, report.relay.connects_ok + report.relay.connects_failed);
        let samples = report.tcp_samples();
        assert_eq!(samples.len() as u64, report.relay.connects_ok);
        let mean_err = report.mean_tcp_error_ms().unwrap();
        assert!(mean_err < 1.0, "mean error {mean_err}");
        // Mapping ran once per successful connection and mostly avoided parses.
        assert_eq!(report.mapping.requests, report.relay.connects_ok);
        assert!(report.mapping.mitigation_rate() > 0.3, "mitigation {}", report.mapping.mitigation_rate());
        assert_eq!(report.mapping.mismapped, 0);
        // DNS queries from the workload were measured too.
        assert_eq!(report.dns_samples().len() as u64, report.relay.dns_queries);
        assert!(report.relay.dns_queries >= 5);
        // The ledger charged every component of Figure 4.
        for component in ["TunReader", "MainWorker", "TunWriter", "ConnectThreads"] {
            assert!(
                report.ledger.busy_of(component) > SimDuration::ZERO,
                "{component} should have CPU time"
            );
        }
        assert!(report.ledger.memory_peak_bytes() > 6 * 1024 * 1024);
        assert!(report.events_processed > 100);
        // The datapath recycles packet buffers: after warm-up nearly every
        // tunnel packet reuses a pooled buffer instead of allocating.
        assert!(
            report.buffer_pool.reuse_rate() > 0.9,
            "tunnel buffer reuse {:?}",
            report.buffer_pool
        );
        assert!(report.socket_read_pool.reuses > 0, "{:?}", report.socket_read_pool);
    }

    #[test]
    fn selector_timestamps_are_less_accurate_than_blocking_thread() {
        let flows: Vec<FlowSpec> = (0..40)
            .map(|i| {
                let mut f = one_flow(300, 4096);
                f.at = SimTime::from_millis(200 * i as u64 + 10);
                f
            })
            .collect();
        let mut accurate = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
        let report_accurate = accurate.run_flows(flows.clone());
        let mut sloppy = MopEyeEngine::new(
            MopEyeConfig::mopeye().with_timestamp_mode(TimestampMode::SelectorNotification),
            network(),
        );
        let report_sloppy = sloppy.run_flows(flows);
        let e_accurate = report_accurate.mean_tcp_error_ms().unwrap();
        let e_sloppy = report_sloppy.mean_tcp_error_ms().unwrap();
        assert!(e_accurate < 1.0, "blocking-thread error {e_accurate}");
        assert!(e_sloppy > e_accurate * 2.0, "selector error {e_sloppy} vs {e_accurate}");
    }

    #[test]
    fn haystack_preset_burns_more_cpu_and_memory() {
        let flows: Vec<FlowSpec> = (0..30)
            .map(|i| {
                let mut f = one_flow(500, 16 * 1024);
                f.at = SimTime::from_millis(300 * i as u64 + 10);
                f
            })
            .collect();
        let mut mopeye = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
        let mop_report = mopeye.run_flows(flows.clone());
        let mut haystack = MopEyeEngine::new(MopEyeConfig::haystack_like(), network());
        let hay_report = haystack.run_flows(flows);
        let wall = mop_report.finished_at - SimTime::ZERO;
        let mop_cpu = mop_report.ledger.cpu_percent(wall);
        let hay_cpu = hay_report.ledger.cpu_percent(hay_report.finished_at - SimTime::ZERO);
        assert!(hay_cpu > mop_cpu, "haystack {hay_cpu}% vs mopeye {mop_cpu}%");
        assert!(hay_report.ledger.memory_peak_bytes() > mop_report.ledger.memory_peak_bytes() * 5);
    }

    #[test]
    fn flow_keyed_engine_evicts_finished_flow_state() {
        let flows: Vec<FlowSpec> = (0..30)
            .map(|i| {
                let mut f = one_flow(300, 2048);
                f.src = Some(Endpoint::v4(10, 1, 0, i as u8, 40_000));
                f.at = SimTime::from_millis(10 + 40 * i as u64);
                f
            })
            .collect();
        let mut engine = MopEyeEngine::new(MopEyeConfig::fleet_shard(), network());
        let report = engine.run_flows(flows);
        assert_eq!(report.relay.connects_ok, 30);
        // Teardown released the keyed state: memory is bounded by concurrent
        // flows, not total flows — entries recreated by the app's final ACKs
        // are swept by the zombie-client cleanup.
        assert_eq!(engine.flow_rngs.len(), 0, "flow RNG streams not evicted");
        assert_eq!(engine.writer_lanes.len(), 0, "writer lanes not evicted");
        assert_eq!(engine.clients.len(), 0, "zombie clients not removed");
    }

    #[test]
    fn run_report_goodput_reflects_transferred_bytes() {
        let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
        let report = engine.run_flows(vec![one_flow(400, 16 * 1024)]);
        let goodput = report.download_goodput_mbps().unwrap();
        assert!(goodput > 0.1, "goodput {goodput}");
        assert!(report.tun.bytes_to_apps > report.tun.bytes_from_apps);
    }
}
