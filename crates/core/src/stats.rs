//! Run statistics: RTT samples with ground truth, relay counters and per-flow
//! outcomes.

use mop_packet::FourTuple;
use mop_simnet::{SimDuration, SimTime};

/// Whether a sample measured a TCP handshake or a DNS exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// SYN ↔ SYN/ACK of a relayed TCP connection.
    Tcp,
    /// DNS query ↔ response.
    Dns,
}

/// One RTT measurement taken by the engine, together with the simulator's
/// ground truth so accuracy can be evaluated (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct RttSample {
    /// TCP or DNS.
    pub kind: SampleKind,
    /// The connection or query flow.
    pub flow: FourTuple,
    /// The UID the engine attributed the flow to, if mapping succeeded.
    pub uid: Option<u32>,
    /// The package name the engine attributed the flow to.
    pub package: Option<String>,
    /// The destination domain, when known (from DNS answers or server config).
    pub domain: Option<String>,
    /// The RTT MopEye measured, in milliseconds.
    pub measured_ms: f64,
    /// The ground-truth path RTT sampled by the simulator, in milliseconds.
    pub true_ms: f64,
    /// The tcpdump-equivalent RTT observed on the wire tap, if available.
    pub tcpdump_ms: Option<f64>,
    /// When the measurement completed.
    pub at: SimTime,
}

impl RttSample {
    /// The absolute error against the wire-tap (tcpdump) reference, the
    /// metric Table 2 reports, falling back to the model ground truth when
    /// the tap is disabled.
    pub fn error_ms(&self) -> f64 {
        (self.measured_ms - self.tcpdump_ms.unwrap_or(self.true_ms)).abs()
    }
}

/// Counters describing what the relay did during a run.
#[derive(Debug, Default, Clone)]
pub struct RelayStats {
    /// TCP SYNs processed (connections attempted by apps).
    pub syns: u64,
    /// Connections whose external connect succeeded.
    pub connects_ok: u64,
    /// Connections whose external connect failed.
    pub connects_failed: u64,
    /// Data segments relayed app → server.
    pub data_segments_out: u64,
    /// Data segments relayed server → app.
    pub data_segments_in: u64,
    /// Pure ACKs discarded (§2.3).
    pub pure_acks_discarded: u64,
    /// FINs processed from apps.
    pub fins: u64,
    /// RSTs processed from apps.
    pub rsts: u64,
    /// UDP datagrams relayed.
    pub udp_datagrams: u64,
    /// DNS queries relayed and measured.
    pub dns_queries: u64,
    /// Bytes relayed app → server.
    pub bytes_out: u64,
    /// Bytes relayed server → app.
    pub bytes_in: u64,
    /// Packets that failed to parse and were dropped.
    pub parse_errors: u64,
    /// Connections reaped by the per-connection idle timer (zero unless the
    /// engine runs with `idle_timeout`; excluded from the fleet digest so
    /// historical digests stay comparable).
    pub idle_reaped: u64,
    /// Data segments retransmitted towards apps (fast retransmit + RTO
    /// paths). Zero unless the simulated network injects data-path faults;
    /// excluded from the fleet digest so historical digests stay comparable.
    pub retransmits: u64,
    /// Fast-retransmit events (third duplicate ACK). Zero on clean networks;
    /// excluded from the fleet digest.
    pub fast_retransmits: u64,
    /// Retransmission-timer fires that actually resent a segment. Zero on
    /// clean networks; excluded from the fleet digest.
    pub rto_fires: u64,
    /// In-flight segments covered by SACK blocks from apps. Zero on clean
    /// networks; excluded from the fleet digest.
    pub sacked_segments: u64,
    /// Times a shard worker stalled handing its report to the fleet's
    /// measurement sink (full report ring). Wall-clock backpressure
    /// observability, not simulated behaviour — excluded from equality (see
    /// the hand-written `PartialEq`) and from digests.
    pub sink_stalls: u64,
}

impl PartialEq for RelayStats {
    fn eq(&self, other: &Self) -> bool {
        // `sink_stalls` is deliberately excluded: it depends on host thread
        // scheduling, not on what the relay computed. Everything else —
        // including `idle_reaped`, which is deterministic — must match.
        self.syns == other.syns
            && self.connects_ok == other.connects_ok
            && self.connects_failed == other.connects_failed
            && self.data_segments_out == other.data_segments_out
            && self.data_segments_in == other.data_segments_in
            && self.pure_acks_discarded == other.pure_acks_discarded
            && self.fins == other.fins
            && self.rsts == other.rsts
            && self.udp_datagrams == other.udp_datagrams
            && self.dns_queries == other.dns_queries
            && self.bytes_out == other.bytes_out
            && self.bytes_in == other.bytes_in
            && self.parse_errors == other.parse_errors
            && self.idle_reaped == other.idle_reaped
            && self.retransmits == other.retransmits
            && self.fast_retransmits == other.fast_retransmits
            && self.rto_fires == other.rto_fires
            && self.sacked_segments == other.sacked_segments
    }
}

impl RelayStats {
    /// Adds another relay's counters into this one (cross-shard
    /// aggregation). Every field is a sum, so the merge of any partition of
    /// a flow set equals the unpartitioned counters.
    pub fn merge(&mut self, other: &RelayStats) {
        self.syns += other.syns;
        self.connects_ok += other.connects_ok;
        self.connects_failed += other.connects_failed;
        self.data_segments_out += other.data_segments_out;
        self.data_segments_in += other.data_segments_in;
        self.pure_acks_discarded += other.pure_acks_discarded;
        self.fins += other.fins;
        self.rsts += other.rsts;
        self.udp_datagrams += other.udp_datagrams;
        self.dns_queries += other.dns_queries;
        self.bytes_out += other.bytes_out;
        self.bytes_in += other.bytes_in;
        self.parse_errors += other.parse_errors;
        self.idle_reaped += other.idle_reaped;
        self.retransmits += other.retransmits;
        self.fast_retransmits += other.fast_retransmits;
        self.rto_fires += other.rto_fires;
        self.sacked_segments += other.sacked_segments;
        self.sink_stalls += other.sink_stalls;
    }
}

/// The fate of one app flow at the end of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The flow.
    pub flow: FourTuple,
    /// The owning app's package name (from the workload, not the mapper).
    pub package: String,
    /// When the app opened the flow.
    pub started_at: SimTime,
    /// When the last byte was delivered to the app (or the flow failed).
    pub finished_at: SimTime,
    /// Response bytes the app received.
    pub bytes_received: usize,
    /// True if the flow completed cleanly (handshake + close, or DNS answer).
    pub completed: bool,
}

impl FlowOutcome {
    /// The flow's duration.
    pub fn duration(&self) -> SimDuration {
        self.finished_at - self.started_at
    }

    /// Goodput in megabits per second, if the flow transferred anything.
    pub fn goodput_mbps(&self) -> Option<f64> {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 || self.bytes_received == 0 {
            return None;
        }
        Some(self.bytes_received as f64 * 8.0 / 1_000_000.0 / secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;

    fn flow() -> FourTuple {
        FourTuple::new(Endpoint::v4(10, 0, 0, 2, 1), Endpoint::v4(1, 1, 1, 1, 443))
    }

    #[test]
    fn sample_error_prefers_tcpdump_reference() {
        let mut s = RttSample {
            kind: SampleKind::Tcp,
            flow: flow(),
            uid: Some(10100),
            package: Some("com.app".into()),
            domain: None,
            measured_ms: 37.4,
            true_ms: 36.0,
            tcpdump_ms: Some(37.0),
            at: SimTime::ZERO,
        };
        assert!((s.error_ms() - 0.4).abs() < 1e-9);
        s.tcpdump_ms = None;
        assert!((s.error_ms() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn flow_outcome_goodput() {
        let o = FlowOutcome {
            flow: flow(),
            package: "com.app".into(),
            started_at: SimTime::from_secs(1),
            finished_at: SimTime::from_secs(3),
            bytes_received: 2 * 1024 * 1024,
            completed: true,
        };
        assert_eq!(o.duration().as_secs_f64(), 2.0);
        let mbps = o.goodput_mbps().unwrap();
        assert!((mbps - 8.388_608).abs() < 0.01, "mbps {mbps}");
        let empty = FlowOutcome { bytes_received: 0, ..o.clone() };
        assert!(empty.goodput_mbps().is_none());
    }

    #[test]
    fn relay_stats_default_is_zeroed() {
        let s = RelayStats::default();
        assert_eq!(s.syns, 0);
        assert_eq!(s.bytes_in + s.bytes_out, 0);
    }
}
