//! The sharded multi-worker relay engine.
//!
//! A single [`MopEyeEngine`] is one event loop — one core, no matter how fast
//! the per-packet code is. [`FleetEngine`] scales the relay out the way a
//! production deployment would: every connection four-tuple is hashed
//! ([`mop_packet::FourTuple::stable_hash`]) to one of N *shards*, and each
//! shard is a complete engine of its own — its own event loop, buffer pool,
//! TCP machine set, connection table and simulated network — running on its
//! own worker thread.
//!
//! ```text
//!                      ┌─ SPSC ─▶ shard 0 (engine, pool, tcpstack, procnet) ─ SPSC ─┐
//!  TUN ingress ── hash ┼─ SPSC ─▶ shard 1 (engine, pool, tcpstack, procnet) ─ SPSC ─┼─▶ sink
//!  (dispatcher)        └─ SPSC ─▶ shard N (engine, pool, tcpstack, procnet) ─ SPSC ─┘  (merge)
//! ```
//!
//! The dispatcher feeds each shard through a bounded
//! [`mop_simnet::spsc`] queue whose slots carry *batch descriptors* —
//! `Vec<FlowSpec>` bursts of up to the engine's batch size — under
//! credit-based backpressure: the dispatcher takes one credit per in-flight
//! batch from the shard's [`mop_simnet::CreditGate`] and the worker returns
//! it when the batch is accepted, so a slow shard throttles the dispatcher
//! instead of ballooning queues. Each shard hands its results to the
//! measurement sink the same way. Stall counts from both mechanisms surface
//! in the merged report (`TunStats::dispatch_stalls`,
//! `RelayStats::sink_stalls`). With [`FleetConfig::with_pinning`] each
//! worker additionally pins itself to a core (best-effort, wall-clock only).
//! In steady state nothing on the path allocates per packet: the queues are
//! pre-allocated rings and each shard's packet loop runs on its own pools.
//!
//! # Determinism
//!
//! Shard workers always run the [`EngineDiscipline::FlowKeyed`] discipline:
//! every flow's RNG streams, link reservations, writer-queue lane and source
//! endpoint are pure functions of `(seed, four-tuple)`. A flow's timeline is
//! therefore identical no matter which shard executes it — so the *merged*
//! report is identical for 1, 2 or 8 shards, bit for bit, which
//! [`FleetReport::digest`] makes checkable in one comparison.
//!
//! # Scaling
//!
//! With [`WorkerModel::Saturating`], each shard's MainWorker is a serial
//! resource; a workload that saturates one worker completes ~N× faster in
//! virtual time on N shards. The fleet benchmark measures exactly that
//! (aggregate relay goodput at 1/2/4/8 shards).
//!
//! # Residency
//!
//! The worker protocol lives in [`ResidentFleet`]: shard threads are
//! spawned **once**, park on their job rings between runs, and are fed
//! successive `Begin → Burst… → Finish` sequences — each `Begin` resets the
//! shard's engine in place ([`MopEyeEngine::reset`]: pools, rings, wheel
//! slabs and stage tables cleared, not dropped), so the steady state of a
//! long-lived fleet spawns no threads and re-allocates none of its
//! machinery. [`FleetEngine::run`] is the one-shot form: it builds a
//! resident fleet, runs a single batch and tears it down, so both paths
//! share one dispatch/merge implementation and reuse is observationally
//! invisible by construction (checked bit-for-bit by
//! `tests/resident_reuse.rs`).

use std::sync::Arc;
use std::thread::JoinHandle;

use mop_simnet::{
    affinity, spsc_channel, CreditGate, SimNetworkBuilder, SimTime, SpscReceiver, SpscSender,
};
use mop_tun::FlowSpec;
use mop_packet::{FourTuple, StableHasher};

use crate::config::{EngineDiscipline, MopEyeConfig, WorkerModel};
use crate::engine::{MopEyeEngine, RunReport};
use crate::stats::SampleKind;

/// Configuration of a [`FleetEngine`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (worker threads). Clamped to at least 1.
    pub shards: usize,
    /// The per-shard engine configuration. The discipline is forced to
    /// [`EngineDiscipline::FlowKeyed`] — the sharded merge is only
    /// well-defined under flow-keyed state.
    pub engine: MopEyeConfig,
    /// Slot count of each shard's ingress queue; the dispatcher blocks (and
    /// yields) when a shard falls this far behind.
    pub ingress_capacity: usize,
    /// Credits per shard: how many flow batches may be in flight towards a
    /// shard before the dispatcher blocks waiting for the worker to accept
    /// one. Clamped to at least 1. Purely a wall-clock pacing knob — virtual
    /// time and digests are unaffected.
    pub credit_depth: usize,
    /// Pin each shard worker to a core (`shard % available_cores`),
    /// best-effort: where the platform facade cannot pin
    /// ([`mop_simnet::affinity`]), the worker runs unpinned and reports
    /// `None` in [`ShardOutcome::pinned_core`]. Wall-clock only; never
    /// affects results.
    pub pin_shards: bool,
}

impl FleetConfig {
    /// A fleet of `shards` relay workers running the released MopEye
    /// configuration with a generous event budget.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            engine: MopEyeConfig::fleet_shard().with_max_events(u64::MAX),
            ingress_capacity: 4096,
            credit_depth: 4,
            pin_shards: false,
        }
    }

    /// Enables the saturating MainWorker model (see [`WorkerModel`]), under
    /// which relay capacity scales with the shard count.
    pub fn saturating(mut self) -> Self {
        self.engine = self.engine.with_worker(WorkerModel::Saturating);
        self
    }

    /// Sets the engine seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine = self.engine.with_seed(seed);
        self
    }

    /// Sets the per-shard scheduler backend (wheel vs reference heap).
    pub fn with_scheduler(mut self, scheduler: mop_simnet::SchedulerKind) -> Self {
        self.engine = self.engine.with_scheduler(scheduler);
        self
    }

    /// Arms per-connection idle timers on every shard (see
    /// [`MopEyeConfig::idle_timeout`]).
    pub fn with_idle_timeout(mut self, timeout: mop_simnet::SimDuration) -> Self {
        self.engine = self.engine.with_idle_timeout(Some(timeout));
        self
    }

    /// Selects the congestion-control algorithm every shard's loss recovery
    /// runs (see [`MopEyeConfig::congestion`]). Only consulted on networks
    /// that inject data-path faults.
    pub fn with_congestion(mut self, congestion: mop_tcpstack::CongestionAlgo) -> Self {
        self.engine = self.engine.with_congestion(congestion);
        self
    }

    /// Sets the per-shard engine batch size (burst length of the stage
    /// pipeline and of the dispatcher's flow batches). See
    /// [`MopEyeConfig::batch_size`].
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.engine = self.engine.with_batch_size(batch_size);
        self
    }

    /// Enables windowed per-epoch aggregation on every shard sink (see
    /// [`MopEyeConfig::epoch_width`] and [`MopEyeConfig::epoch_window`]):
    /// samples are stamped into `width`-wide epochs, with `window` epochs
    /// live before folding into the tail. The merged report then carries
    /// `RunReport::windows` and the fleet digest folds it in.
    pub fn with_epochs(mut self, width: mop_simnet::SimDuration, window: usize) -> Self {
        self.engine = self.engine.with_epoch_width(Some(width)).with_epoch_window(window);
        self
    }

    /// Sets the credit depth of each shard's ingress gate (in-flight flow
    /// batches before the dispatcher blocks). Clamped to at least 1.
    pub fn with_credits(mut self, depth: usize) -> Self {
        self.credit_depth = depth.max(1);
        self
    }

    /// Enables (or disables) best-effort core pinning of the shard workers.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin_shards = pin;
        self
    }
}

/// What one shard did during a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Connections hashed to this shard.
    pub flows_assigned: usize,
    /// Events the shard's loop processed.
    pub events_processed: u64,
    /// Virtual time at which the shard drained its last event.
    pub finished_at: SimTime,
    /// RTT samples the shard produced.
    pub samples: usize,
    /// The core the worker pinned itself to, when [`FleetConfig::pin_shards`]
    /// was set and the platform supported it.
    pub pinned_core: Option<usize>,
}

/// The merged result of a fleet run plus the per-shard breakdown.
#[derive(Debug)]
pub struct FleetReport {
    /// Shard count the run used.
    pub shards: usize,
    /// The cross-shard merge: samples and flows in canonical order, counters
    /// summed, `finished_at` the maximum over shards. Under the flow-keyed
    /// discipline this is identical for every shard count.
    pub merged: RunReport,
    /// Per-shard outcomes, ordered by shard index.
    pub per_shard: Vec<ShardOutcome>,
}

impl FleetReport {
    /// A stable 64-bit digest of the merged report's semantic content
    /// (samples, relay counters, flow outcomes, TUN counters, finish time,
    /// event count). Two runs are behaviourally identical iff their digests
    /// match — the one-line determinism check.
    pub fn digest(&self) -> u64 {
        self.merged.fleet_digest()
    }

    /// Aggregate relay goodput over the whole fleet: response bytes
    /// delivered to apps divided by the busy interval, in Mbit/s. Under the
    /// saturating worker model this is the relay's modelled capacity.
    pub fn relay_throughput_mbps(&self) -> Option<f64> {
        self.merged.download_goodput_mbps()
    }
}

/// The sharded multi-worker relay engine. See the [module docs](self).
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
    net_builder: SimNetworkBuilder,
}

impl FleetEngine {
    /// Creates a fleet over the network described by `net_builder` (each
    /// shard builds its own copy, switched to flow-keyed mode).
    pub fn new(mut config: FleetConfig, net_builder: SimNetworkBuilder) -> Self {
        config.shards = config.shards.max(1);
        config.ingress_capacity = config.ingress_capacity.max(1);
        config.engine = config.engine.with_discipline(EngineDiscipline::FlowKeyed);
        Self { config, net_builder }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shard a flow spec is dispatched to: a stable hash of its
    /// four-tuple modulo the shard count.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no pre-assigned source endpoint — fleet flows
    /// must carry one (scenario generators do), because the four-tuple *is*
    /// the shard key.
    pub fn shard_of(spec: &FlowSpec, shards: usize) -> usize {
        let src = spec
            .src
            .expect("fleet flows must pre-assign FlowSpec::src (the four-tuple is the shard key)");
        (FourTuple::new(src, spec.dst).stable_hash() % shards.max(1) as u64) as usize
    }

    /// Runs `flows` across the shards to completion and merges the results.
    ///
    /// This is the **cold** path: it spawns a [`ResidentFleet`] for the one
    /// run and tears it down afterwards, paying thread spawns and engine
    /// construction every call. A caller stepping many batches should hold
    /// a resident fleet and call [`ResidentFleet::run_next`] instead — the
    /// result is bit-identical, only the wall clock differs.
    pub fn run(&self, flows: Vec<FlowSpec>) -> FleetReport {
        ResidentFleet::new(self.config.clone()).run_next(&self.net_builder, flows)
    }
}

/// One message on a resident shard worker's job ring.
enum ShardJob {
    /// Start a new run over the network this builder describes: the worker
    /// builds it flow-keyed and resets (or, on the very first run,
    /// constructs) its engine. Uncredited — `run_next` sends exactly one
    /// per shard per run.
    Begin(Box<SimNetworkBuilder>),
    /// A batch-sized burst of the current run's flow specs. Credited: the
    /// dispatcher takes one gate credit per burst in flight and the worker
    /// returns it on acceptance.
    Burst(Vec<FlowSpec>),
    /// No more bursts: run the accumulated flows and deliver the report on
    /// the report ring. Uncredited, like `Begin`.
    Finish,
}

/// The resident shard worker: parks on its job ring between runs, keeps
/// its engine (and every allocation inside it) across `Begin`s, and exits
/// when the ring closes.
fn spawn_worker(
    shard: usize,
    engine_config: MopEyeConfig,
    pin: bool,
    jobs: SpscReceiver<ShardJob>,
    gate: Arc<CreditGate>,
    reports: SpscSender<(RunReport, Option<usize>)>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let pinned_core = pin
            .then(|| {
                let core = shard % affinity::available_cores();
                affinity::pin_current_thread_to_core(core).then_some(core)
            })
            .flatten();
        let mut engine: Option<MopEyeEngine> = None;
        let mut shard_flows: Vec<FlowSpec> = Vec::new();
        while let Some(job) = jobs.recv() {
            match job {
                ShardJob::Begin(builder) => {
                    let net = builder.flow_keyed().build();
                    match engine.as_mut() {
                        Some(engine) => engine.reset(net),
                        None => engine = Some(MopEyeEngine::new(engine_config.clone(), net)),
                    }
                }
                ShardJob::Burst(burst) => {
                    shard_flows.extend(burst);
                    gate.release(); // Burst accepted: return its credit.
                }
                ShardJob::Finish => {
                    let engine = engine.as_mut().expect("Begin precedes Finish");
                    let report = engine.run_flows(std::mem::take(&mut shard_flows));
                    let _ = reports.send((report, pinned_core));
                }
            }
        }
    })
}

/// A fleet whose shard workers outlive any single run. See the
/// [module docs](self) — `# Residency`.
///
/// Construction spawns the worker threads; [`ResidentFleet::run_next`]
/// then feeds them successive flow batches, resetting each shard's engine
/// in place per run. Dropping the fleet closes the job rings, which parks
/// the workers out of their loops and joins them.
pub struct ResidentFleet {
    config: FleetConfig,
    jobs: Vec<SpscSender<ShardJob>>,
    gates: Vec<Arc<CreditGate>>,
    reports: Vec<SpscReceiver<(RunReport, Option<usize>)>>,
    workers: Vec<Option<JoinHandle<()>>>,
    // The gate/ring/sink stall counters are cumulative over the fleet's
    // lifetime; these high-water marks turn them into per-run deltas so a
    // resident run reports the same stall accounting a fresh fleet would.
    gate_stalls_seen: Vec<u64>,
    ring_stalls_seen: Vec<u64>,
    sink_stalls_seen: Vec<u64>,
    threads_spawned: u64,
    runs: u64,
}

impl std::fmt::Debug for ResidentFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentFleet")
            .field("shards", &self.config.shards)
            .field("threads_spawned", &self.threads_spawned)
            .field("runs", &self.runs)
            .finish_non_exhaustive()
    }
}

impl ResidentFleet {
    /// Spawns the shard workers (once, for the fleet's whole lifetime) and
    /// leaves them parked on their job rings. Like [`FleetEngine::new`],
    /// the engine discipline is forced to flow-keyed.
    pub fn new(mut config: FleetConfig) -> Self {
        config.shards = config.shards.max(1);
        config.ingress_capacity = config.ingress_capacity.max(1);
        config.engine = config.engine.with_discipline(EngineDiscipline::FlowKeyed);
        let shards = config.shards;
        let mut fleet = Self {
            jobs: Vec::with_capacity(shards),
            gates: Vec::with_capacity(shards),
            reports: Vec::with_capacity(shards),
            workers: Vec::with_capacity(shards),
            gate_stalls_seen: vec![0; shards],
            ring_stalls_seen: vec![0; shards],
            sink_stalls_seen: vec![0; shards],
            threads_spawned: shards as u64,
            runs: 0,
            config,
        };
        for shard in 0..shards {
            let (job_tx, job_rx) = spsc_channel::<ShardJob>(fleet.config.ingress_capacity);
            let (report_tx, report_rx) = spsc_channel::<(RunReport, Option<usize>)>(1);
            let gate = Arc::new(CreditGate::new(fleet.config.credit_depth.max(1) as u64));
            fleet.workers.push(Some(spawn_worker(
                shard,
                fleet.config.engine.clone(),
                fleet.config.pin_shards,
                job_rx,
                Arc::clone(&gate),
                report_tx,
            )));
            fleet.jobs.push(job_tx);
            fleet.gates.push(gate);
            fleet.reports.push(report_rx);
        }
        fleet
    }

    /// The fleet configuration (every run uses it).
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Worker threads ever spawned — constant after construction; the
    /// step-latency bench asserts it stays equal to the shard count across
    /// warm runs.
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned
    }

    /// Completed [`ResidentFleet::run_next`] calls.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs one flow batch over the network `net_builder` describes and
    /// merges the shard results — bit-identical to
    /// `FleetEngine::new(config, net_builder).run(flows)`, but reusing the
    /// parked workers and their engines: no thread spawns, and the pools,
    /// rings, wheel slabs and stage tables inside each engine are cleared
    /// rather than dropped between runs.
    pub fn run_next(&mut self, net_builder: &SimNetworkBuilder, flows: Vec<FlowSpec>) -> FleetReport {
        let shards = self.config.shards;
        // Hash each four-tuple once: the counting pass remembers every
        // flow's shard so the dispatch loop below just indexes.
        let assignment: Vec<usize> =
            flows.iter().map(|spec| FleetEngine::shard_of(spec, shards)).collect();
        let mut flows_assigned = vec![0usize; shards];
        for &shard in &assignment {
            flows_assigned[shard] += 1;
        }

        for shard in 0..shards {
            self.send_job(shard, ShardJob::Begin(Box::new(net_builder.clone())));
        }
        // The TUN ingress: group each shard's connections into batch-sized
        // bursts and push them through the bounded queue under credit — a
        // lagging shard throttles the dispatcher here.
        let batch = self.config.engine.batch_size.max(1);
        let mut pending: Vec<Vec<FlowSpec>> =
            (0..shards).map(|_| Vec::with_capacity(batch)).collect();
        for (spec, shard) in flows.into_iter().zip(assignment) {
            pending[shard].push(spec);
            if pending[shard].len() == batch {
                let full = std::mem::replace(&mut pending[shard], Vec::with_capacity(batch));
                self.gates[shard].acquire();
                self.send_job(shard, ShardJob::Burst(full));
            }
        }
        for (shard, tail) in pending.into_iter().enumerate() {
            if !tail.is_empty() {
                self.gates[shard].acquire();
                self.send_job(shard, ShardJob::Burst(tail));
            }
        }
        for shard in 0..shards {
            self.send_job(shard, ShardJob::Finish);
        }
        let mut dispatch_stalls = 0u64;
        for shard in 0..shards {
            let gate_total = self.gates[shard].stalls();
            let ring_total = self.jobs[shard].stalls();
            dispatch_stalls += (gate_total - self.gate_stalls_seen[shard])
                + (ring_total - self.ring_stalls_seen[shard]);
            self.gate_stalls_seen[shard] = gate_total;
            self.ring_stalls_seen[shard] = ring_total;
        }

        let mut shard_reports: Vec<(usize, RunReport, Option<usize>)> = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (mut report, pinned_core) = match self.reports[shard].recv() {
                Some(delivered) => delivered,
                None => self.propagate_worker_death(shard),
            };
            let sink_total = self.reports[shard].stalls();
            report.relay.sink_stalls += sink_total - self.sink_stalls_seen[shard];
            self.sink_stalls_seen[shard] = sink_total;
            shard_reports.push((shard, report, pinned_core));
        }
        self.runs += 1;

        let mut merged = RunReport::empty();
        let mut per_shard = Vec::with_capacity(shards);
        for (shard, report, pinned_core) in shard_reports {
            per_shard.push(ShardOutcome {
                shard,
                flows_assigned: flows_assigned[shard],
                events_processed: report.events_processed,
                finished_at: report.finished_at,
                samples: report.samples.len(),
                pinned_core,
            });
            merged.absorb(report);
        }
        merged.canonicalise();
        // Dispatcher-side stalls belong to the fleet's TUN ingress, not to
        // any one shard; fold them in after the merge.
        merged.tun.dispatch_stalls += dispatch_stalls;
        FleetReport { shards, merged, per_shard }
    }

    fn send_job(&mut self, shard: usize, job: ShardJob) {
        if self.jobs[shard].send(job).is_err() {
            self.propagate_worker_death(shard);
        }
    }

    /// A closed ring means the worker exited early — join it so its panic
    /// (the only way out of the loop while senders are live) surfaces with
    /// its own message rather than a generic "hung up".
    fn propagate_worker_death(&mut self, shard: usize) -> ! {
        if let Some(worker) = self.workers[shard].take() {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
        panic!("resident shard {shard} worker hung up");
    }
}

impl Drop for ResidentFleet {
    fn drop(&mut self) {
        self.jobs.clear(); // Close the rings; workers fall out of their loops.
        for worker in self.workers.iter_mut().filter_map(Option::take) {
            let _ = worker.join();
        }
    }
}

impl RunReport {
    /// An all-zero report, the identity element of [`RunReport::absorb`].
    pub fn empty() -> Self {
        Self {
            samples: Vec::new(),
            aggregates: Default::default(),
            windows: None,
            relay: Default::default(),
            mapping: Default::default(),
            write_delays: Default::default(),
            tun: Default::default(),
            ledger: Default::default(),
            buffer_pool: Default::default(),
            socket_read_pool: Default::default(),
            flows: Vec::new(),
            finished_at: SimTime::ZERO,
            events_processed: 0,
            events_scheduled: 0,
            profile: Default::default(),
        }
    }

    /// Merges another (shard's) report into this one: samples and flows are
    /// concatenated, aggregate sketches merged cell-wise, counters summed,
    /// `finished_at` maximised. Call [`RunReport::canonicalise`] after the
    /// last merge.
    ///
    /// # Ordering contract
    ///
    /// Like `MeasurementStore::merge_from`, the sample and flow vectors are
    /// **appended** in merge order and only become canonical after
    /// [`RunReport::canonicalise`]. The aggregate sketches need no such
    /// step: their merge is integral and commutative, so they are already
    /// bit-identical for any merge order.
    pub fn absorb(&mut self, other: RunReport) {
        self.samples.extend(other.samples);
        self.aggregates.merge_from(&other.aggregates);
        match (&mut self.windows, other.windows) {
            (Some(mine), Some(theirs)) => mine.merge_from(&theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs),
            _ => {}
        }
        self.relay.merge(&other.relay);
        self.mapping.merge(&other.mapping);
        self.write_delays.merge(&other.write_delays);
        self.tun.merge(&other.tun);
        self.ledger.merge(&other.ledger);
        self.buffer_pool.merge(&other.buffer_pool);
        self.socket_read_pool.merge(&other.socket_read_pool);
        self.flows.extend(other.flows);
        self.finished_at = self.finished_at.max(other.finished_at);
        self.events_processed += other.events_processed;
        self.events_scheduled += other.events_scheduled;
        self.profile.merge(&other.profile);
    }

    /// Sorts samples and flow outcomes into their canonical order
    /// (measurement time, then flow), so equal flow sets produce equal
    /// reports regardless of how they were partitioned.
    pub fn canonicalise(&mut self) {
        self.samples.sort_by(|a, b| {
            (a.at, a.flow, sample_kind_tag(a.kind)).cmp(&(b.at, b.flow, sample_kind_tag(b.kind)))
        });
        self.flows.sort_by_key(|f| f.flow);
    }

    /// A stable FNV-1a digest over the report's semantic content: every RTT
    /// sample, the relay counters, every flow outcome, the TUN counters, the
    /// finish time and the event count.
    ///
    /// Resource *accounting* (CPU ledger, pool statistics, mapping cost
    /// samples, write-delay histograms) is deliberately excluded: how much a
    /// shard's `/proc/net` parse cost or how many buffers a pool pre-grew
    /// depends on which flows were co-resident, which is partition-specific
    /// bookkeeping, not relay behaviour.
    pub fn fleet_digest(&self) -> u64 {
        let mut fnv = StableHasher::new();
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.sort_by(|&i, &j| {
            let a = &self.samples[i];
            let b = &self.samples[j];
            (a.at, a.flow, sample_kind_tag(a.kind)).cmp(&(b.at, b.flow, sample_kind_tag(b.kind)))
        });
        fnv.write_u64(order.len() as u64);
        for i in order {
            let s = &self.samples[i];
            fnv.write_u64(u64::from(sample_kind_tag(s.kind)));
            fnv.write_u64(s.flow.stable_hash());
            fnv.write_u64(u64::from(s.uid.unwrap_or(u32::MAX)));
            fnv.write_str(s.package.as_deref().unwrap_or(""));
            fnv.write_str(s.domain.as_deref().unwrap_or(""));
            fnv.write_f64(s.measured_ms);
            fnv.write_f64(s.true_ms);
            fnv.write_f64(s.tcpdump_ms.unwrap_or(f64::NEG_INFINITY));
            fnv.write_u64(s.at.as_nanos());
        }
        for c in [
            self.relay.syns,
            self.relay.connects_ok,
            self.relay.connects_failed,
            self.relay.data_segments_out,
            self.relay.data_segments_in,
            self.relay.pure_acks_discarded,
            self.relay.fins,
            self.relay.rsts,
            self.relay.udp_datagrams,
            self.relay.dns_queries,
            self.relay.bytes_out,
            self.relay.bytes_in,
            self.relay.parse_errors,
        ] {
            fnv.write_u64(c);
        }
        let mut flow_order: Vec<usize> = (0..self.flows.len()).collect();
        flow_order.sort_by(|&i, &j| self.flows[i].flow.cmp(&self.flows[j].flow));
        fnv.write_u64(flow_order.len() as u64);
        for i in flow_order {
            let f = &self.flows[i];
            fnv.write_u64(f.flow.stable_hash());
            fnv.write_str(&f.package);
            fnv.write_u64(f.started_at.as_nanos());
            fnv.write_u64(f.finished_at.as_nanos());
            fnv.write_u64(f.bytes_received as u64);
            fnv.write_u64(u64::from(f.completed));
        }
        for c in [
            self.tun.packets_from_apps,
            self.tun.bytes_from_apps,
            self.tun.packets_to_apps,
            self.tun.bytes_to_apps,
        ] {
            fnv.write_u64(c);
        }
        fnv.write_u64(self.finished_at.as_nanos());
        fnv.write_u64(self.events_processed);
        // The streaming aggregates are part of the run's semantic content:
        // their own digest is canonical (BTreeMap order, integral sketches),
        // so folding it in keeps the fleet digest shard-count-invariant.
        fnv.write_u64(self.aggregates.digest());
        // Windowed epoch aggregates join the digest only when the run
        // enabled them, so epoch-less runs keep their pinned historical
        // digests; the windowed merge is partition-invariant like the flat
        // one, so this stays shard-count-invariant too.
        if let Some(windows) = &self.windows {
            fnv.write_u64(windows.digest());
        }
        fnv.finish()
    }
}

fn sample_kind_tag(kind: SampleKind) -> u8 {
    match kind {
        SampleKind::Tcp => 0,
        SampleKind::Dns => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;
    use mop_simnet::SimNetwork;
    use mop_tun::FlowKind;

    fn fleet_flows(n: usize) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| {
                let user = i as u32;
                let src = Endpoint::v4(
                    10,
                    (user >> 16) as u8,
                    (user >> 8) as u8,
                    user as u8,
                    40_000 + (i % 1000) as u16,
                );
                FlowSpec {
                    at: SimTime::from_millis(5 + (i as u64 * 7) % 2000),
                    uid: 10_100 + (user % 7),
                    package: format!("com.fleet.app{}", user % 7),
                    src: Some(src),
                    dst: Endpoint::v4(216, 58, 221, 132, 443),
                    domain: Some("www.google.com".into()),
                    request_bytes: 300,
                    close_after: 4 * 1024,
                    kind: FlowKind::Tcp,
                    network: None,
                    isp: None,
                }
            })
            .collect()
    }

    fn builder() -> SimNetworkBuilder {
        SimNetwork::builder().seed(99).with_table2_destinations()
    }

    #[test]
    fn sharding_covers_all_shards_and_is_stable() {
        let flows = fleet_flows(256);
        let mut counts = [0usize; 8];
        for f in &flows {
            let s = FleetEngine::shard_of(f, 8);
            assert_eq!(s, FleetEngine::shard_of(f, 8), "assignment is stable");
            counts[s] += 1;
        }
        assert!(counts.iter().all(|c| *c > 8), "uneven sharding: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "pre-assign FlowSpec::src")]
    fn fleet_flows_without_src_panic() {
        let mut flow = fleet_flows(1).remove(0);
        flow.src = None;
        FleetEngine::shard_of(&flow, 4);
    }

    #[test]
    fn merged_report_is_identical_across_shard_counts() {
        let flows = fleet_flows(300);
        let mut digests = Vec::new();
        for shards in [1usize, 3, 8] {
            let fleet = FleetEngine::new(FleetConfig::new(shards), builder());
            let report = fleet.run(flows.clone());
            assert_eq!(report.per_shard.len(), shards);
            assert_eq!(report.merged.flows.len(), 300);
            assert_eq!(report.merged.relay.syns, 300);
            digests.push((report.digest(), report.merged.relay.clone(), report.merged.finished_at));
        }
        assert_eq!(digests[0], digests[1], "1 vs 3 shards");
        assert_eq!(digests[1], digests[2], "3 vs 8 shards");
    }

    #[test]
    fn different_seeds_produce_different_digests() {
        let flows = fleet_flows(60);
        let a = FleetEngine::new(FleetConfig::new(2).with_seed(1), builder()).run(flows.clone());
        let b = FleetEngine::new(FleetConfig::new(2).with_seed(2), builder()).run(flows);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn saturating_worker_stretches_a_single_shard() {
        // A burst far above one worker's capacity: with one shard the
        // backlog stretches the finish time well past the eight-shard run.
        // (Burst amortisation raised per-worker capacity ~4x, hence the
        // load well above the old 600-flow saturation point.)
        let flows = fleet_flows(3000);
        let one = FleetEngine::new(FleetConfig::new(1).saturating(), builder()).run(flows.clone());
        let eight = FleetEngine::new(FleetConfig::new(8).saturating(), builder()).run(flows);
        assert!(
            one.merged.finished_at > eight.merged.finished_at,
            "1-shard {:?} vs 8-shard {:?}",
            one.merged.finished_at,
            eight.merged.finished_at
        );
        let t1 = one.relay_throughput_mbps().unwrap();
        let t8 = eight.relay_throughput_mbps().unwrap();
        assert!(t8 > t1, "throughput should scale: 1-shard {t1} vs 8-shard {t8}");
    }
}
