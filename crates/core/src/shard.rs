//! The sharded multi-worker relay engine.
//!
//! A single [`MopEyeEngine`] is one event loop — one core, no matter how fast
//! the per-packet code is. [`FleetEngine`] scales the relay out the way a
//! production deployment would: every connection four-tuple is hashed
//! ([`mop_packet::FourTuple::stable_hash`]) to one of N *shards*, and each
//! shard is a complete engine of its own — its own event loop, buffer pool,
//! TCP machine set, connection table and simulated network — running on its
//! own worker thread.
//!
//! ```text
//!                      ┌─ SPSC ─▶ shard 0 (engine, pool, tcpstack, procnet) ─ SPSC ─┐
//!  TUN ingress ── hash ┼─ SPSC ─▶ shard 1 (engine, pool, tcpstack, procnet) ─ SPSC ─┼─▶ sink
//!  (dispatcher)        └─ SPSC ─▶ shard N (engine, pool, tcpstack, procnet) ─ SPSC ─┘  (merge)
//! ```
//!
//! The dispatcher feeds each shard through a bounded
//! [`mop_simnet::spsc`] queue whose slots carry *batch descriptors* —
//! `Vec<FlowSpec>` bursts of up to the engine's batch size — under
//! credit-based backpressure: the dispatcher takes one credit per in-flight
//! batch from the shard's [`mop_simnet::CreditGate`] and the worker returns
//! it when the batch is accepted, so a slow shard throttles the dispatcher
//! instead of ballooning queues. Each shard hands its results to the
//! measurement sink the same way. Stall counts from both mechanisms surface
//! in the merged report (`TunStats::dispatch_stalls`,
//! `RelayStats::sink_stalls`). With [`FleetConfig::with_pinning`] each
//! worker additionally pins itself to a core (best-effort, wall-clock only).
//! In steady state nothing on the path allocates per packet: the queues are
//! pre-allocated rings and each shard's packet loop runs on its own pools.
//!
//! # Determinism
//!
//! Shard workers always run the [`EngineDiscipline::FlowKeyed`] discipline:
//! every flow's RNG streams, link reservations, writer-queue lane and source
//! endpoint are pure functions of `(seed, four-tuple)`. A flow's timeline is
//! therefore identical no matter which shard executes it — so the *merged*
//! report is identical for 1, 2 or 8 shards, bit for bit, which
//! [`FleetReport::digest`] makes checkable in one comparison.
//!
//! # Scaling
//!
//! With [`WorkerModel::Saturating`], each shard's MainWorker is a serial
//! resource; a workload that saturates one worker completes ~N× faster in
//! virtual time on N shards. The fleet benchmark measures exactly that
//! (aggregate relay goodput at 1/2/4/8 shards).

use std::sync::Arc;

use mop_simnet::{affinity, spsc_channel, CreditGate, SimNetworkBuilder, SimTime};
use mop_tun::FlowSpec;
use mop_packet::{FourTuple, StableHasher};

use crate::config::{EngineDiscipline, MopEyeConfig, WorkerModel};
use crate::engine::{MopEyeEngine, RunReport};
use crate::stats::SampleKind;

/// Configuration of a [`FleetEngine`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (worker threads). Clamped to at least 1.
    pub shards: usize,
    /// The per-shard engine configuration. The discipline is forced to
    /// [`EngineDiscipline::FlowKeyed`] — the sharded merge is only
    /// well-defined under flow-keyed state.
    pub engine: MopEyeConfig,
    /// Slot count of each shard's ingress queue; the dispatcher blocks (and
    /// yields) when a shard falls this far behind.
    pub ingress_capacity: usize,
    /// Credits per shard: how many flow batches may be in flight towards a
    /// shard before the dispatcher blocks waiting for the worker to accept
    /// one. Clamped to at least 1. Purely a wall-clock pacing knob — virtual
    /// time and digests are unaffected.
    pub credit_depth: usize,
    /// Pin each shard worker to a core (`shard % available_cores`),
    /// best-effort: where the platform facade cannot pin
    /// ([`mop_simnet::affinity`]), the worker runs unpinned and reports
    /// `None` in [`ShardOutcome::pinned_core`]. Wall-clock only; never
    /// affects results.
    pub pin_shards: bool,
}

impl FleetConfig {
    /// A fleet of `shards` relay workers running the released MopEye
    /// configuration with a generous event budget.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            engine: MopEyeConfig::fleet_shard().with_max_events(u64::MAX),
            ingress_capacity: 4096,
            credit_depth: 4,
            pin_shards: false,
        }
    }

    /// Enables the saturating MainWorker model (see [`WorkerModel`]), under
    /// which relay capacity scales with the shard count.
    pub fn saturating(mut self) -> Self {
        self.engine = self.engine.with_worker(WorkerModel::Saturating);
        self
    }

    /// Sets the engine seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine = self.engine.with_seed(seed);
        self
    }

    /// Sets the per-shard scheduler backend (wheel vs reference heap).
    pub fn with_scheduler(mut self, scheduler: mop_simnet::SchedulerKind) -> Self {
        self.engine = self.engine.with_scheduler(scheduler);
        self
    }

    /// Arms per-connection idle timers on every shard (see
    /// [`MopEyeConfig::idle_timeout`]).
    pub fn with_idle_timeout(mut self, timeout: mop_simnet::SimDuration) -> Self {
        self.engine = self.engine.with_idle_timeout(Some(timeout));
        self
    }

    /// Selects the congestion-control algorithm every shard's loss recovery
    /// runs (see [`MopEyeConfig::congestion`]). Only consulted on networks
    /// that inject data-path faults.
    pub fn with_congestion(mut self, congestion: mop_tcpstack::CongestionAlgo) -> Self {
        self.engine = self.engine.with_congestion(congestion);
        self
    }

    /// Sets the per-shard engine batch size (burst length of the stage
    /// pipeline and of the dispatcher's flow batches). See
    /// [`MopEyeConfig::batch_size`].
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.engine = self.engine.with_batch_size(batch_size);
        self
    }

    /// Enables windowed per-epoch aggregation on every shard sink (see
    /// [`MopEyeConfig::epoch_width`] and [`MopEyeConfig::epoch_window`]):
    /// samples are stamped into `width`-wide epochs, with `window` epochs
    /// live before folding into the tail. The merged report then carries
    /// `RunReport::windows` and the fleet digest folds it in.
    pub fn with_epochs(mut self, width: mop_simnet::SimDuration, window: usize) -> Self {
        self.engine = self.engine.with_epoch_width(Some(width)).with_epoch_window(window);
        self
    }

    /// Sets the credit depth of each shard's ingress gate (in-flight flow
    /// batches before the dispatcher blocks). Clamped to at least 1.
    pub fn with_credits(mut self, depth: usize) -> Self {
        self.credit_depth = depth.max(1);
        self
    }

    /// Enables (or disables) best-effort core pinning of the shard workers.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin_shards = pin;
        self
    }
}

/// What one shard did during a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Connections hashed to this shard.
    pub flows_assigned: usize,
    /// Events the shard's loop processed.
    pub events_processed: u64,
    /// Virtual time at which the shard drained its last event.
    pub finished_at: SimTime,
    /// RTT samples the shard produced.
    pub samples: usize,
    /// The core the worker pinned itself to, when [`FleetConfig::pin_shards`]
    /// was set and the platform supported it.
    pub pinned_core: Option<usize>,
}

/// The merged result of a fleet run plus the per-shard breakdown.
#[derive(Debug)]
pub struct FleetReport {
    /// Shard count the run used.
    pub shards: usize,
    /// The cross-shard merge: samples and flows in canonical order, counters
    /// summed, `finished_at` the maximum over shards. Under the flow-keyed
    /// discipline this is identical for every shard count.
    pub merged: RunReport,
    /// Per-shard outcomes, ordered by shard index.
    pub per_shard: Vec<ShardOutcome>,
}

impl FleetReport {
    /// A stable 64-bit digest of the merged report's semantic content
    /// (samples, relay counters, flow outcomes, TUN counters, finish time,
    /// event count). Two runs are behaviourally identical iff their digests
    /// match — the one-line determinism check.
    pub fn digest(&self) -> u64 {
        self.merged.fleet_digest()
    }

    /// Aggregate relay goodput over the whole fleet: response bytes
    /// delivered to apps divided by the busy interval, in Mbit/s. Under the
    /// saturating worker model this is the relay's modelled capacity.
    pub fn relay_throughput_mbps(&self) -> Option<f64> {
        self.merged.download_goodput_mbps()
    }
}

/// The sharded multi-worker relay engine. See the [module docs](self).
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
    net_builder: SimNetworkBuilder,
}

impl FleetEngine {
    /// Creates a fleet over the network described by `net_builder` (each
    /// shard builds its own copy, switched to flow-keyed mode).
    pub fn new(mut config: FleetConfig, net_builder: SimNetworkBuilder) -> Self {
        config.shards = config.shards.max(1);
        config.ingress_capacity = config.ingress_capacity.max(1);
        config.engine = config.engine.with_discipline(EngineDiscipline::FlowKeyed);
        Self { config, net_builder }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shard a flow spec is dispatched to: a stable hash of its
    /// four-tuple modulo the shard count.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no pre-assigned source endpoint — fleet flows
    /// must carry one (scenario generators do), because the four-tuple *is*
    /// the shard key.
    pub fn shard_of(spec: &FlowSpec, shards: usize) -> usize {
        let src = spec
            .src
            .expect("fleet flows must pre-assign FlowSpec::src (the four-tuple is the shard key)");
        (FourTuple::new(src, spec.dst).stable_hash() % shards.max(1) as u64) as usize
    }

    /// Runs `flows` across the shards to completion and merges the results.
    pub fn run(&self, flows: Vec<FlowSpec>) -> FleetReport {
        let shards = self.config.shards;
        // Hash each four-tuple once: the counting pass remembers every
        // flow's shard so the dispatch loop below just indexes.
        let assignment: Vec<usize> =
            flows.iter().map(|spec| Self::shard_of(spec, shards)).collect();
        let mut flows_assigned = vec![0usize; shards];
        for &shard in &assignment {
            flows_assigned[shard] += 1;
        }

        let batch = self.config.engine.batch_size.max(1);
        let mut shard_reports: Vec<(usize, RunReport, Option<usize>)> = Vec::with_capacity(shards);
        let mut dispatch_stalls = 0u64;
        std::thread::scope(|scope| {
            let mut ingress = Vec::with_capacity(shards);
            let mut gates: Vec<Arc<CreditGate>> = Vec::with_capacity(shards);
            let mut sinks = Vec::with_capacity(shards);
            for (shard, &expected) in flows_assigned.iter().take(shards).enumerate() {
                let (flow_tx, flow_rx) =
                    spsc_channel::<Vec<FlowSpec>>(self.config.ingress_capacity);
                let (report_tx, report_rx) = spsc_channel::<(RunReport, Option<usize>)>(1);
                let gate = Arc::new(CreditGate::new(self.config.credit_depth.max(1) as u64));
                let worker_gate = Arc::clone(&gate);
                let engine_config = self.config.engine.clone();
                let builder = self.net_builder.clone();
                let pin = self.config.pin_shards;
                scope.spawn(move || {
                    let pinned_core = pin
                        .then(|| {
                            let core = shard % affinity::available_cores();
                            affinity::pin_current_thread_to_core(core).then_some(core)
                        })
                        .flatten();
                    let net = builder.flow_keyed().build();
                    let mut engine = MopEyeEngine::new(engine_config, net);
                    let mut shard_flows = Vec::with_capacity(expected);
                    while let Some(burst) = flow_rx.recv() {
                        shard_flows.extend(burst);
                        worker_gate.release(); // Burst accepted: return its credit.
                    }
                    let report = engine.run_flows(shard_flows);
                    let _ = report_tx.send((report, pinned_core));
                });
                ingress.push(flow_tx);
                gates.push(gate);
                sinks.push(report_rx);
            }
            // The TUN ingress: group each shard's connections into
            // batch-sized bursts and push them through the bounded queue
            // under credit — a lagging shard throttles the dispatcher here.
            let mut pending: Vec<Vec<FlowSpec>> =
                (0..shards).map(|_| Vec::with_capacity(batch)).collect();
            for (spec, shard) in flows.into_iter().zip(assignment) {
                pending[shard].push(spec);
                if pending[shard].len() == batch {
                    let full = std::mem::replace(&mut pending[shard], Vec::with_capacity(batch));
                    gates[shard].acquire();
                    ingress[shard].send(full).expect("shard worker hung up");
                }
            }
            for (shard, tail) in pending.into_iter().enumerate() {
                if !tail.is_empty() {
                    gates[shard].acquire();
                    ingress[shard].send(tail).expect("shard worker hung up");
                }
            }
            dispatch_stalls = gates.iter().map(|g| g.stalls()).sum::<u64>()
                + ingress.iter().map(|tx| tx.stalls()).sum::<u64>();
            drop(ingress); // Close the queues; workers drain and run.
            for (shard, sink) in sinks.into_iter().enumerate() {
                let (mut report, pinned_core) =
                    sink.recv().expect("shard delivers exactly one report");
                report.relay.sink_stalls += sink.stalls();
                shard_reports.push((shard, report, pinned_core));
            }
        });

        let mut merged = RunReport::empty();
        let mut per_shard = Vec::with_capacity(shards);
        for (shard, report, pinned_core) in shard_reports {
            per_shard.push(ShardOutcome {
                shard,
                flows_assigned: flows_assigned[shard],
                events_processed: report.events_processed,
                finished_at: report.finished_at,
                samples: report.samples.len(),
                pinned_core,
            });
            merged.absorb(report);
        }
        merged.canonicalise();
        // Dispatcher-side stalls belong to the fleet's TUN ingress, not to
        // any one shard; fold them in after the merge.
        merged.tun.dispatch_stalls += dispatch_stalls;
        FleetReport { shards, merged, per_shard }
    }
}

impl RunReport {
    /// An all-zero report, the identity element of [`RunReport::absorb`].
    pub fn empty() -> Self {
        Self {
            samples: Vec::new(),
            aggregates: Default::default(),
            windows: None,
            relay: Default::default(),
            mapping: Default::default(),
            write_delays: Default::default(),
            tun: Default::default(),
            ledger: Default::default(),
            buffer_pool: Default::default(),
            socket_read_pool: Default::default(),
            flows: Vec::new(),
            finished_at: SimTime::ZERO,
            events_processed: 0,
            events_scheduled: 0,
        }
    }

    /// Merges another (shard's) report into this one: samples and flows are
    /// concatenated, aggregate sketches merged cell-wise, counters summed,
    /// `finished_at` maximised. Call [`RunReport::canonicalise`] after the
    /// last merge.
    ///
    /// # Ordering contract
    ///
    /// Like `MeasurementStore::merge_from`, the sample and flow vectors are
    /// **appended** in merge order and only become canonical after
    /// [`RunReport::canonicalise`]. The aggregate sketches need no such
    /// step: their merge is integral and commutative, so they are already
    /// bit-identical for any merge order.
    pub fn absorb(&mut self, other: RunReport) {
        self.samples.extend(other.samples);
        self.aggregates.merge_from(&other.aggregates);
        match (&mut self.windows, other.windows) {
            (Some(mine), Some(theirs)) => mine.merge_from(&theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs),
            _ => {}
        }
        self.relay.merge(&other.relay);
        self.mapping.merge(&other.mapping);
        self.write_delays.merge(&other.write_delays);
        self.tun.merge(&other.tun);
        self.ledger.merge(&other.ledger);
        self.buffer_pool.merge(&other.buffer_pool);
        self.socket_read_pool.merge(&other.socket_read_pool);
        self.flows.extend(other.flows);
        self.finished_at = self.finished_at.max(other.finished_at);
        self.events_processed += other.events_processed;
        self.events_scheduled += other.events_scheduled;
    }

    /// Sorts samples and flow outcomes into their canonical order
    /// (measurement time, then flow), so equal flow sets produce equal
    /// reports regardless of how they were partitioned.
    pub fn canonicalise(&mut self) {
        self.samples.sort_by(|a, b| {
            (a.at, a.flow, sample_kind_tag(a.kind)).cmp(&(b.at, b.flow, sample_kind_tag(b.kind)))
        });
        self.flows.sort_by_key(|f| f.flow);
    }

    /// A stable FNV-1a digest over the report's semantic content: every RTT
    /// sample, the relay counters, every flow outcome, the TUN counters, the
    /// finish time and the event count.
    ///
    /// Resource *accounting* (CPU ledger, pool statistics, mapping cost
    /// samples, write-delay histograms) is deliberately excluded: how much a
    /// shard's `/proc/net` parse cost or how many buffers a pool pre-grew
    /// depends on which flows were co-resident, which is partition-specific
    /// bookkeeping, not relay behaviour.
    pub fn fleet_digest(&self) -> u64 {
        let mut fnv = StableHasher::new();
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.sort_by(|&i, &j| {
            let a = &self.samples[i];
            let b = &self.samples[j];
            (a.at, a.flow, sample_kind_tag(a.kind)).cmp(&(b.at, b.flow, sample_kind_tag(b.kind)))
        });
        fnv.write_u64(order.len() as u64);
        for i in order {
            let s = &self.samples[i];
            fnv.write_u64(u64::from(sample_kind_tag(s.kind)));
            fnv.write_u64(s.flow.stable_hash());
            fnv.write_u64(u64::from(s.uid.unwrap_or(u32::MAX)));
            fnv.write_str(s.package.as_deref().unwrap_or(""));
            fnv.write_str(s.domain.as_deref().unwrap_or(""));
            fnv.write_f64(s.measured_ms);
            fnv.write_f64(s.true_ms);
            fnv.write_f64(s.tcpdump_ms.unwrap_or(f64::NEG_INFINITY));
            fnv.write_u64(s.at.as_nanos());
        }
        for c in [
            self.relay.syns,
            self.relay.connects_ok,
            self.relay.connects_failed,
            self.relay.data_segments_out,
            self.relay.data_segments_in,
            self.relay.pure_acks_discarded,
            self.relay.fins,
            self.relay.rsts,
            self.relay.udp_datagrams,
            self.relay.dns_queries,
            self.relay.bytes_out,
            self.relay.bytes_in,
            self.relay.parse_errors,
        ] {
            fnv.write_u64(c);
        }
        let mut flow_order: Vec<usize> = (0..self.flows.len()).collect();
        flow_order.sort_by(|&i, &j| self.flows[i].flow.cmp(&self.flows[j].flow));
        fnv.write_u64(flow_order.len() as u64);
        for i in flow_order {
            let f = &self.flows[i];
            fnv.write_u64(f.flow.stable_hash());
            fnv.write_str(&f.package);
            fnv.write_u64(f.started_at.as_nanos());
            fnv.write_u64(f.finished_at.as_nanos());
            fnv.write_u64(f.bytes_received as u64);
            fnv.write_u64(u64::from(f.completed));
        }
        for c in [
            self.tun.packets_from_apps,
            self.tun.bytes_from_apps,
            self.tun.packets_to_apps,
            self.tun.bytes_to_apps,
        ] {
            fnv.write_u64(c);
        }
        fnv.write_u64(self.finished_at.as_nanos());
        fnv.write_u64(self.events_processed);
        // The streaming aggregates are part of the run's semantic content:
        // their own digest is canonical (BTreeMap order, integral sketches),
        // so folding it in keeps the fleet digest shard-count-invariant.
        fnv.write_u64(self.aggregates.digest());
        // Windowed epoch aggregates join the digest only when the run
        // enabled them, so epoch-less runs keep their pinned historical
        // digests; the windowed merge is partition-invariant like the flat
        // one, so this stays shard-count-invariant too.
        if let Some(windows) = &self.windows {
            fnv.write_u64(windows.digest());
        }
        fnv.finish()
    }
}

fn sample_kind_tag(kind: SampleKind) -> u8 {
    match kind {
        SampleKind::Tcp => 0,
        SampleKind::Dns => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mop_packet::Endpoint;
    use mop_simnet::SimNetwork;
    use mop_tun::FlowKind;

    fn fleet_flows(n: usize) -> Vec<FlowSpec> {
        (0..n)
            .map(|i| {
                let user = i as u32;
                let src = Endpoint::v4(
                    10,
                    (user >> 16) as u8,
                    (user >> 8) as u8,
                    user as u8,
                    40_000 + (i % 1000) as u16,
                );
                FlowSpec {
                    at: SimTime::from_millis(5 + (i as u64 * 7) % 2000),
                    uid: 10_100 + (user % 7),
                    package: format!("com.fleet.app{}", user % 7),
                    src: Some(src),
                    dst: Endpoint::v4(216, 58, 221, 132, 443),
                    domain: Some("www.google.com".into()),
                    request_bytes: 300,
                    close_after: 4 * 1024,
                    kind: FlowKind::Tcp,
                    network: None,
                    isp: None,
                }
            })
            .collect()
    }

    fn builder() -> SimNetworkBuilder {
        SimNetwork::builder().seed(99).with_table2_destinations()
    }

    #[test]
    fn sharding_covers_all_shards_and_is_stable() {
        let flows = fleet_flows(256);
        let mut counts = [0usize; 8];
        for f in &flows {
            let s = FleetEngine::shard_of(f, 8);
            assert_eq!(s, FleetEngine::shard_of(f, 8), "assignment is stable");
            counts[s] += 1;
        }
        assert!(counts.iter().all(|c| *c > 8), "uneven sharding: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "pre-assign FlowSpec::src")]
    fn fleet_flows_without_src_panic() {
        let mut flow = fleet_flows(1).remove(0);
        flow.src = None;
        FleetEngine::shard_of(&flow, 4);
    }

    #[test]
    fn merged_report_is_identical_across_shard_counts() {
        let flows = fleet_flows(300);
        let mut digests = Vec::new();
        for shards in [1usize, 3, 8] {
            let fleet = FleetEngine::new(FleetConfig::new(shards), builder());
            let report = fleet.run(flows.clone());
            assert_eq!(report.per_shard.len(), shards);
            assert_eq!(report.merged.flows.len(), 300);
            assert_eq!(report.merged.relay.syns, 300);
            digests.push((report.digest(), report.merged.relay.clone(), report.merged.finished_at));
        }
        assert_eq!(digests[0], digests[1], "1 vs 3 shards");
        assert_eq!(digests[1], digests[2], "3 vs 8 shards");
    }

    #[test]
    fn different_seeds_produce_different_digests() {
        let flows = fleet_flows(60);
        let a = FleetEngine::new(FleetConfig::new(2).with_seed(1), builder()).run(flows.clone());
        let b = FleetEngine::new(FleetConfig::new(2).with_seed(2), builder()).run(flows);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn saturating_worker_stretches_a_single_shard() {
        // A burst far above one worker's capacity: with one shard the
        // backlog stretches the finish time well past the eight-shard run.
        // (Burst amortisation raised per-worker capacity ~4x, hence the
        // load well above the old 600-flow saturation point.)
        let flows = fleet_flows(3000);
        let one = FleetEngine::new(FleetConfig::new(1).saturating(), builder()).run(flows.clone());
        let eight = FleetEngine::new(FleetConfig::new(8).saturating(), builder()).run(flows);
        assert!(
            one.merged.finished_at > eight.merged.finished_at,
            "1-shard {:?} vs 8-shard {:?}",
            one.merged.finished_at,
            eight.merged.finished_at
        );
        let t1 = one.relay_throughput_mbps().unwrap();
        let t8 = eight.relay_throughput_mbps().unwrap();
        assert!(t8 > t1, "throughput should scale: 1-shard {t1} vs 8-shard {t8}");
    }
}
