//! What a run produced: the [`RunReport`] every engine (and every fleet
//! shard) emits when its event loop drains.
//!
//! The report is assembled by the engine from the four pipeline stages —
//! relay counters from the relay stage, write-delay histograms from egress,
//! TUN/pool counters from ingress, samples and aggregates from the sink —
//! plus the shared substrate's ledger. The cross-shard merge operations
//! (`empty` / `absorb` / `canonicalise` / `fleet_digest`) live in
//! [`crate::shard`] next to the fleet engine that uses them.

use mop_measure::{AggregateStore, WindowedAggregateStore};
use mop_procnet::MappingStats;
use mop_simnet::{CpuLedger, PoolStats, ProfileReport, SimTime};
use mop_tun::TunStats;

use crate::stats::{FlowOutcome, RelayStats, RttSample, SampleKind};
use crate::tun_writer::WriteDelayStats;

/// Everything a run produced.
#[derive(Debug)]
pub struct RunReport {
    /// RTT samples (TCP and DNS) with ground truth.
    ///
    /// Empty when the engine ran with `retain_samples: false` — the
    /// streaming [`RunReport::aggregates`] then carry the run's measurement
    /// content in constant memory.
    pub samples: Vec<RttSample>,
    /// Streaming aggregation of every RTT sample: mergeable quantile
    /// sketches keyed by (kind, network, app, domain, ISP), folded in at the
    /// measurement sink as samples are produced. Merged cross-shard exactly
    /// like the sample vector, and bit-identical for any shard count under
    /// the flow-keyed discipline.
    pub aggregates: AggregateStore,
    /// Windowed per-epoch aggregation of the same samples, present only when
    /// the run set [`crate::config::MopEyeConfig::epoch_width`]. Merged
    /// cross-shard like [`RunReport::aggregates`] and folded into the fleet
    /// digest only when present, so epoch-less runs keep their historical
    /// digests bit for bit.
    pub windows: Option<WindowedAggregateStore>,
    /// Relay counters.
    pub relay: RelayStats,
    /// Packet-to-app mapping statistics.
    pub mapping: MappingStats,
    /// Tunnel-write delay statistics.
    pub write_delays: WriteDelayStats,
    /// TUN device counters.
    pub tun: TunStats,
    /// CPU / memory / battery ledger.
    pub ledger: CpuLedger,
    /// Behaviour of the tunnel-packet buffer pool (allocations vs reuses).
    pub buffer_pool: PoolStats,
    /// Behaviour of the socket read-buffer pool.
    pub socket_read_pool: PoolStats,
    /// Per-flow outcomes.
    pub flows: Vec<FlowOutcome>,
    /// Virtual time at which the run finished.
    pub finished_at: SimTime,
    /// Events processed.
    pub events_processed: u64,
    /// Events ever scheduled (pending + processed + cancelled); cancelled
    /// timers are scheduled but never processed.
    pub events_scheduled: u64,
    /// Wall-clock profile of the host-side run (per-phase timers and gated
    /// counters). Empty unless the `profiling` feature is on. Host timing,
    /// not virtual-time behaviour: excluded from the fleet digest and the
    /// checkpoint encoding, merged across shards like the other stats.
    pub profile: ProfileReport,
}

impl RunReport {
    /// TCP RTT samples only.
    pub fn tcp_samples(&self) -> Vec<&RttSample> {
        self.samples.iter().filter(|s| s.kind == SampleKind::Tcp).collect()
    }

    /// DNS RTT samples only.
    pub fn dns_samples(&self) -> Vec<&RttSample> {
        self.samples.iter().filter(|s| s.kind == SampleKind::Dns).collect()
    }

    /// Total response bytes delivered to apps divided by the busy interval,
    /// in Mbit/s — the downlink goodput seen through the relay.
    pub fn download_goodput_mbps(&self) -> Option<f64> {
        let total: usize = self.flows.iter().map(|f| f.bytes_received).sum();
        let start = self.flows.iter().map(|f| f.started_at).min()?;
        let end = self.flows.iter().map(|f| f.finished_at).max()?;
        let secs = (end - start).as_secs_f64();
        if secs <= 0.0 || total == 0 {
            return None;
        }
        Some(total as f64 * 8.0 / 1_000_000.0 / secs)
    }

    /// Mean absolute RTT error against the tcpdump reference, in ms.
    pub fn mean_tcp_error_ms(&self) -> Option<f64> {
        let errors: Vec<f64> = self.tcp_samples().iter().map(|s| s.error_ms()).collect();
        if errors.is_empty() {
            return None;
        }
        Some(errors.iter().sum::<f64>() / errors.len() as f64)
    }
}
