//! Behavioural tests of the staged engine pipeline, through the public API.
//!
//! These are the historical `engine.rs` unit tests, kept bit-for-bit
//! meaningful across the stage refactor (ingress / relay / egress / sink
//! behind the timing-wheel loop): accuracy, workload relaying, config
//! ablations and reporting must all behave exactly as the monolithic event
//! loop did. New here: the per-connection idle-timer coverage.

use mop_packet::Endpoint;
use mop_simnet::{LatencyModel, SchedulerKind, ServerConfig, Service, SimDuration, SimTime, SimNetwork};
use mop_tun::{FlowKind, FlowSpec, Workload, WorkloadKind};
use mopeye_core::{MopEyeConfig, MopEyeEngine, TimestampMode};

fn network() -> SimNetwork {
    SimNetwork::builder().seed(42).with_table2_destinations().build()
}

fn google() -> Endpoint {
    Endpoint::v4(216, 58, 221, 132, 443)
}

fn one_flow(request: usize, close_after: usize) -> FlowSpec {
    FlowSpec {
        at: SimTime::from_millis(10),
        uid: 10_100,
        package: "com.android.chrome".into(),
        src: None,
        dst: google(),
        domain: Some("www.google.com".into()),
        request_bytes: request,
        close_after,
        kind: FlowKind::Tcp,
        network: None,
        isp: None,
    }
}

#[test]
fn single_tcp_flow_completes_and_is_measured() {
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let report = engine.run_flows(vec![one_flow(400, 8 * 1024)]);
    assert_eq!(report.relay.syns, 1);
    assert_eq!(report.relay.connects_ok, 1);
    assert_eq!(report.relay.connects_failed, 0);
    assert!(report.relay.data_segments_in > 0);
    assert!(report.relay.pure_acks_discarded >= 1);
    assert_eq!(report.flows.len(), 1);
    let flow = &report.flows[0];
    assert!(flow.completed, "flow should finish cleanly");
    assert_eq!(flow.bytes_received, 32 * 1024, "full web response delivered");
    assert_eq!(flow.package, "com.android.chrome");
    // One TCP RTT sample with tight accuracy.
    let samples = report.tcp_samples();
    assert_eq!(samples.len(), 1);
    let s = samples[0];
    assert_eq!(s.package.as_deref(), Some("com.android.chrome"));
    assert_eq!(s.domain.as_deref(), Some("www.google.com"));
    assert!(s.error_ms() < 1.0, "MopEye accuracy should be sub-millisecond, got {}", s.error_ms());
    assert!(s.measured_ms > 1.0, "google RTT should be positive, got {}", s.measured_ms);
}

#[test]
fn dns_flow_is_measured_and_answered() {
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let spec = FlowSpec {
        at: SimTime::from_millis(5),
        uid: 10_100,
        package: "com.android.chrome".into(),
        src: None,
        dst: Endpoint::v4(192, 168, 1, 1, 53),
        domain: Some("www.google.com".into()),
        request_bytes: 0,
        close_after: 0,
        kind: FlowKind::Dns,
        network: None,
        isp: None,
    };
    let report = engine.run_flows(vec![spec]);
    assert_eq!(report.relay.dns_queries, 1);
    let samples = report.dns_samples();
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].domain.as_deref(), Some("www.google.com"));
    assert!(samples[0].measured_ms > 1.0);
    assert!(samples[0].error_ms() < 1.5, "dns error {}", samples[0].error_ms());
    assert!(report.flows[0].completed);
}

#[test]
fn refused_destination_fails_the_flow() {
    let mut net = network();
    net.add_server(ServerConfig::new(
        "closed",
        "10.7.7.7".parse().unwrap(),
        LatencyModel::constant(20.0),
        Service::Refuse,
    ));
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);
    let mut spec = one_flow(100, 0);
    spec.dst = Endpoint::v4(10, 7, 7, 7, 80);
    spec.domain = None;
    let report = engine.run_flows(vec![spec]);
    assert_eq!(report.relay.connects_failed, 1);
    assert_eq!(report.relay.connects_ok, 0);
    assert!(!report.flows[0].completed);
    assert!(report.tcp_samples().is_empty(), "failed connects produce no RTT sample");
}

#[test]
fn web_browsing_workload_produces_many_accurate_samples() {
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let workload = Workload::new(
        WorkloadKind::WebBrowsing,
        10_100,
        "com.android.chrome",
        vec![
            (google(), "www.google.com".into()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
        ],
        SimDuration::from_secs(30),
        5,
    );
    let report = engine.run(&[workload]);
    assert!(report.relay.syns >= 30, "syns {}", report.relay.syns);
    assert_eq!(report.relay.syns, report.relay.connects_ok + report.relay.connects_failed);
    let samples = report.tcp_samples();
    assert_eq!(samples.len() as u64, report.relay.connects_ok);
    let mean_err = report.mean_tcp_error_ms().unwrap();
    assert!(mean_err < 1.0, "mean error {mean_err}");
    // Mapping ran once per successful connection and mostly avoided parses.
    assert_eq!(report.mapping.requests, report.relay.connects_ok);
    assert!(report.mapping.mitigation_rate() > 0.3, "mitigation {}", report.mapping.mitigation_rate());
    assert_eq!(report.mapping.mismapped, 0);
    // DNS queries from the workload were measured too.
    assert_eq!(report.dns_samples().len() as u64, report.relay.dns_queries);
    assert!(report.relay.dns_queries >= 5);
    // The ledger charged every component of Figure 4.
    for component in ["TunReader", "MainWorker", "TunWriter", "ConnectThreads"] {
        assert!(
            report.ledger.busy_of(component) > SimDuration::ZERO,
            "{component} should have CPU time"
        );
    }
    assert!(report.ledger.memory_peak_bytes() > 6 * 1024 * 1024);
    assert!(report.events_processed > 100);
    // The datapath recycles packet buffers: after warm-up nearly every
    // tunnel packet reuses a pooled buffer instead of allocating.
    assert!(
        report.buffer_pool.reuse_rate() > 0.9,
        "tunnel buffer reuse {:?}",
        report.buffer_pool
    );
    assert!(report.socket_read_pool.reuses > 0, "{:?}", report.socket_read_pool);
}

#[test]
fn selector_timestamps_are_less_accurate_than_blocking_thread() {
    let flows: Vec<FlowSpec> = (0..40)
        .map(|i| {
            let mut f = one_flow(300, 4096);
            f.at = SimTime::from_millis(200 * i as u64 + 10);
            f
        })
        .collect();
    let mut accurate = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let report_accurate = accurate.run_flows(flows.clone());
    let mut sloppy = MopEyeEngine::new(
        MopEyeConfig::mopeye().with_timestamp_mode(TimestampMode::SelectorNotification),
        network(),
    );
    let report_sloppy = sloppy.run_flows(flows);
    let e_accurate = report_accurate.mean_tcp_error_ms().unwrap();
    let e_sloppy = report_sloppy.mean_tcp_error_ms().unwrap();
    assert!(e_accurate < 1.0, "blocking-thread error {e_accurate}");
    assert!(e_sloppy > e_accurate * 2.0, "selector error {e_sloppy} vs {e_accurate}");
}

#[test]
fn haystack_preset_burns_more_cpu_and_memory() {
    let flows: Vec<FlowSpec> = (0..30)
        .map(|i| {
            let mut f = one_flow(500, 16 * 1024);
            f.at = SimTime::from_millis(300 * i as u64 + 10);
            f
        })
        .collect();
    let mut mopeye = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let mop_report = mopeye.run_flows(flows.clone());
    let mut haystack = MopEyeEngine::new(MopEyeConfig::haystack_like(), network());
    let hay_report = haystack.run_flows(flows);
    let wall = mop_report.finished_at - SimTime::ZERO;
    let mop_cpu = mop_report.ledger.cpu_percent(wall);
    let hay_cpu = hay_report.ledger.cpu_percent(hay_report.finished_at - SimTime::ZERO);
    assert!(hay_cpu > mop_cpu, "haystack {hay_cpu}% vs mopeye {mop_cpu}%");
    assert!(hay_report.ledger.memory_peak_bytes() > mop_report.ledger.memory_peak_bytes() * 5);
}

#[test]
fn run_report_goodput_reflects_transferred_bytes() {
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let report = engine.run_flows(vec![one_flow(400, 16 * 1024)]);
    let goodput = report.download_goodput_mbps().unwrap();
    assert!(goodput > 0.1, "goodput {goodput}");
    assert!(report.tun.bytes_to_apps > report.tun.bytes_from_apps);
}

#[test]
fn heap_and_wheel_schedulers_produce_identical_runs() {
    // The scheduler backend must be behaviourally invisible: same samples,
    // same counters, same finish time, same event count.
    let flows: Vec<FlowSpec> = (0..25)
        .map(|i| {
            let mut f = one_flow(300, 4 * 1024);
            f.at = SimTime::from_millis(10 + 37 * i as u64);
            f
        })
        .collect();
    let mut wheel = MopEyeEngine::new(
        MopEyeConfig::mopeye().with_scheduler(SchedulerKind::Wheel),
        network(),
    );
    let wheel_report = wheel.run_flows(flows.clone());
    let mut heap = MopEyeEngine::new(
        MopEyeConfig::mopeye().with_scheduler(SchedulerKind::Heap),
        network(),
    );
    let heap_report = heap.run_flows(flows);
    assert_eq!(wheel_report.samples, heap_report.samples);
    assert_eq!(wheel_report.relay, heap_report.relay);
    let sorted = |mut flows: Vec<mopeye_core::stats::FlowOutcome>| {
        flows.sort_by_key(|f| f.flow);
        flows
    };
    assert_eq!(sorted(wheel_report.flows), sorted(heap_report.flows));
    assert_eq!(wheel_report.finished_at, heap_report.finished_at);
    assert_eq!(wheel_report.events_processed, heap_report.events_processed);
    assert_eq!(wheel_report.events_scheduled, heap_report.events_scheduled);
}

#[test]
fn idle_timers_are_cancelled_by_activity_and_never_fire_on_healthy_flows() {
    let flows: Vec<FlowSpec> = (0..10)
        .map(|i| {
            let mut f = one_flow(300, 4 * 1024);
            f.at = SimTime::from_millis(10 + 50 * i as u64);
            f
        })
        .collect();
    // A generous timeout: every healthy flow relays again long before it.
    let config = MopEyeConfig::mopeye().with_idle_timeout(Some(SimDuration::from_secs(60)));
    let mut engine = MopEyeEngine::new(config, network());
    let report = engine.run_flows(flows.clone());
    assert_eq!(report.relay.idle_reaped, 0, "healthy flows are never reaped");
    assert_eq!(report.relay.connects_ok, 10);
    assert!(report.flows.iter().all(|f| f.completed));
    // The timers existed: far more events were scheduled than processed
    // (every armed-then-cancelled timer is scheduled but never fires).
    assert!(
        report.events_scheduled > report.events_processed,
        "scheduled {} vs processed {}",
        report.events_scheduled,
        report.events_processed
    );
    // And the run is otherwise identical to a timerless one.
    let mut bare = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    let bare_report = bare.run_flows(flows);
    assert_eq!(report.samples, bare_report.samples);
    assert_eq!(report.finished_at, bare_report.finished_at);
    assert_eq!(report.events_processed, bare_report.events_processed);
}

#[test]
fn a_silent_connection_is_reaped_by_its_idle_timer() {
    // A flow against a server that accepts the connection and then never
    // responds (an analytics sink): the app's request relays out, nothing
    // ever comes back, and the connection's idle timer reaps it.
    let mut net = network();
    net.add_server(ServerConfig::new(
        "staller",
        "10.9.9.9".parse().unwrap(),
        LatencyModel::constant(15.0),
        Service::Silent,
    ));
    let mut spec = one_flow(200, 1024 * 1024);
    spec.dst = Endpoint::v4(10, 9, 9, 9, 80);
    spec.domain = None;
    let config = MopEyeConfig::mopeye().with_idle_timeout(Some(SimDuration::from_millis(500)));
    let mut engine = MopEyeEngine::new(config, net);
    let report = engine.run_flows(vec![spec]);
    assert_eq!(report.relay.connects_ok, 1);
    assert_eq!(report.relay.idle_reaped, 1, "the stalled flow is reaped");
    assert!(!report.flows[0].completed, "a reaped flow is not a clean completion");
    // The reap fired as a real event, on the wheel.
    assert!(report.events_processed > 0);
}

#[test]
fn the_pipeline_names_its_stages_in_datapath_order() {
    let engine = MopEyeEngine::new(MopEyeConfig::mopeye(), network());
    assert_eq!(engine.stage_names(), ["ingress", "relay", "egress", "sink"]);
}
