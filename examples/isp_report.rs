//! Crowdsourcing analysis: generate the synthetic deployment dataset and
//! print the per-ISP and per-app findings of §4.2 (Tables 5 and 6, the Jio
//! and WhatsApp case studies).
//!
//! Run with `cargo run --release --example isp_report`.

use mopeye::analytics::{CaseJio, CaseWhatsapp, Table5Apps, Table6IspDns};
use mopeye::dataset::{DatasetSpec, SyntheticDataset};

fn main() {
    let dataset = SyntheticDataset::generate(DatasetSpec { seed: 1, scale: 0.01 });
    println!(
        "synthetic deployment: {} measurements from {} devices\n",
        dataset.store.len(),
        dataset.store.counts_per_device().len()
    );

    println!("Table 5 — representative apps (median RTT, ms):");
    for (category, package, count, median, paper) in &Table5Apps::compute(&dataset).rows {
        println!("  {category:<14} {package:<44} n={count:<6} median={median:>6.1} (paper {paper:>5.1})");
    }

    println!("\nTable 6 — LTE operators (median DNS RTT, ms):");
    for (isp, country, count, median, paper) in &Table6IspDns::compute(&dataset).rows {
        println!("  {isp:<14} {country:<10} n={count:<6} median={median:>6.1} (paper {paper:>5.1})");
    }

    let whatsapp = CaseWhatsapp::compute(&dataset);
    println!(
        "\nCase 1 — WhatsApp: {} whatsapp.net domains; SoftLayer median {:.0} ms vs CDN {:.0} ms",
        whatsapp.domains_observed, whatsapp.softlayer_median_ms, whatsapp.cdn_median_ms
    );

    let jio = CaseJio::compute(&dataset);
    println!(
        "Case 2 — Jio: app median {:.0} ms but DNS median {:.0} ms → the bottleneck is the LTE core, \
         not the servers ({} of {} shared domains are faster on other LTE networks).",
        jio.app_median_ms, jio.dns_median_ms, jio.domains_better_off_jio, jio.domains_compared
    );
}
