//! Streaming crowd analytics end to end: run a fleet scenario with raw-sample
//! retention disabled, then diagnose apps and rank ISPs straight from the
//! merged shard-sink sketches — no record vector is ever materialised.
//!
//! Run with `cargo run --release --example crowd_report`
//! (`CROWD_USERS=5000` scales the fleet).

use mopeye::analytics::diagnose::{diagnose_apps, rank_isps, DiagnosisConfig};
use mopeye::analytics::CrowdSummary;
use mopeye::dataset::Scenario;
use mopeye::engine::{FleetConfig, FleetEngine};
use mopeye::measure::MeasurementKind;

fn main() {
    let users: usize = std::env::var("CROWD_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500);
    let scenario = Scenario::rush_hour(users, 2017);
    let mut config = FleetConfig::new(4).with_seed(2017);
    config.engine = config.engine.with_retain_samples(false); // sketches only
    let fleet = FleetEngine::new(config, scenario.network());
    let report = fleet.run(scenario.generate());
    let aggregates = &report.merged.aggregates;

    println!(
        "rush hour: {} users, 4 shards -> {} flows, {} RTT samples folded into {} sketch cells",
        users,
        report.merged.flows.len(),
        aggregates.sample_count(),
        aggregates.cell_count(),
    );
    println!("raw sample vector retained: {} entries\n", report.merged.samples.len());

    let summary = CrowdSummary::compute(aggregates);
    println!(
        "TCP median {:.1} ms (p95 {:.1}), DNS median {:.1} ms over {} devices\n",
        summary.tcp.median().unwrap_or(f64::NAN),
        summary.tcp.quantile(0.95).unwrap_or(f64::NAN),
        summary.dns.median().unwrap_or(f64::NAN),
        summary.devices,
    );

    println!("Per-app diagnosis (worst first):");
    for d in diagnose_apps(aggregates, DiagnosisConfig::default()) {
        println!(
            "  {:<30} {:<13} median {:>6.1} ms vs network baseline {:>6.1} ms ({} samples)",
            d.app,
            d.verdict.label(),
            d.app_median_ms,
            d.baseline_median_ms,
            d.samples,
        );
    }

    println!("\nISP ranking (TCP, fastest first):");
    for r in rank_isps(aggregates, MeasurementKind::Tcp, 20) {
        println!(
            "  {:<12} median {:>6.1} ms, p95 {:>7.1} ms ({} samples)",
            r.isp, r.median_ms, r.p95_ms, r.samples
        );
    }
}
