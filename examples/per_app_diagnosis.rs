//! Per-app diagnosis: compare how different apps experience the same network,
//! the scenario that motivates per-app (rather than landline-style)
//! measurement in the paper's introduction.
//!
//! Run with `cargo run --example per_app_diagnosis`.

use mopeye::engine::{MopEyeConfig, MopEyeEngine};
use mopeye::measure::Summary;
use mopeye::packet::Endpoint;
use mopeye::simnet::{LatencyModel, ServerConfig, Service, SimDuration, SimNetwork};
use mopeye::tun::{Workload, WorkloadKind};

fn main() {
    // Two app back-ends on very different paths: a nearby CDN and a
    // badly-placed chat server (the WhatsApp/SoftLayer situation of Case 1).
    let mut builder = SimNetwork::builder().seed(7);
    builder = builder.server(
        ServerConfig::new(
            "cdn-front-end",
            "203.0.113.10".parse().unwrap(),
            LatencyModel::lognormal_with(18.0, 0.3, 4.0),
            Service::web(),
        )
        .with_domain("cdn.videoapp.example"),
    );
    builder = builder.server(
        ServerConfig::new(
            "faraway-chat-server",
            "198.51.100.77".parse().unwrap(),
            LatencyModel::lognormal_with(255.0, 0.25, 40.0),
            Service::api(),
        )
        .with_domain("chat.messenger.example"),
    );
    let net = builder.build();
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);

    let video = Workload::new(
        WorkloadKind::Messaging,
        10_200,
        "com.videoapp",
        vec![(Endpoint::v4(203, 0, 113, 10, 443), "cdn.videoapp.example".into())],
        SimDuration::from_secs(60),
        40,
    );
    let chat = Workload::new(
        WorkloadKind::Messaging,
        10_201,
        "com.messenger",
        vec![(Endpoint::v4(198, 51, 100, 77, 443), "chat.messenger.example".into())],
        SimDuration::from_secs(60),
        40,
    );
    let report = engine.run(&[video, chat]);

    println!("Per-app RTT summary over one minute of opportunistic measurement:\n");
    for package in ["com.videoapp", "com.messenger"] {
        let rtts: Vec<f64> = report
            .tcp_samples()
            .iter()
            .filter(|s| s.package.as_deref() == Some(package))
            .map(|s| s.measured_ms)
            .collect();
        if let Some(summary) = Summary::of(&rtts) {
            println!(
                "{package:<18} n={:<4} median={:>7.1} ms  p95={:>7.1} ms",
                summary.count, summary.median, summary.p95
            );
        }
    }
    println!();
    println!(
        "The chat app's problem is its server placement, not the user's access network —\n\
         exactly the kind of diagnosis per-app measurement enables (paper §1, §4.2.2)."
    );
}
