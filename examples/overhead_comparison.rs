//! Overhead comparison: run the same traffic through MopEye's configuration
//! and a Haystack-like configuration and compare accuracy, throughput and
//! resource cost (§4.1 of the paper).
//!
//! Run with `cargo run --release --example overhead_comparison`.

use mopeye::baselines::SpeedTest;
use mopeye::engine::{MopEyeConfig, MopEyeEngine};
use mopeye::packet::Endpoint;
use mopeye::simnet::{SimDuration, SimNetwork, SimTime};
use mopeye::tun::{Workload, WorkloadKind};

fn run(config: MopEyeConfig) -> (f64, f64, f64) {
    let net = SimNetwork::builder().seed(3).with_table2_destinations().build();
    let mut engine = MopEyeEngine::new(config, net);
    let browsing = Workload::new(
        WorkloadKind::WebBrowsing,
        10_100,
        "com.android.chrome",
        vec![
            (Endpoint::v4(216, 58, 221, 132, 443), "www.google.com".into()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
        ],
        SimDuration::from_secs(120),
        12,
    );
    let report = engine.run(&[browsing]);
    let wall = report.finished_at - SimTime::ZERO;
    (
        report.mean_tcp_error_ms().unwrap_or(f64::NAN),
        report.ledger.cpu_percent(wall),
        report.ledger.memory_peak_bytes() as f64 / (1024.0 * 1024.0),
    )
}

fn main() {
    println!("{:<28} {:>14} {:>10} {:>12}", "configuration", "RTT error (ms)", "CPU (%)", "memory (MB)");
    for (name, config) in [
        ("MopEye", MopEyeConfig::mopeye()),
        ("Haystack-like", MopEyeConfig::haystack_like()),
        ("Naive (ToyVpn-style)", MopEyeConfig::naive()),
    ] {
        let (error, cpu, mem) = run(config);
        println!("{name:<28} {error:>14.3} {cpu:>10.2} {mem:>12.0}");
    }

    println!("\nThroughput through the relay (25 Mbps WiFi, Table 3):");
    let harness = SpeedTest::new(5, 12 * 1024 * 1024);
    let baseline = harness.baseline();
    println!("  baseline  : {:>6.2} / {:>6.2} Mbps (down/up)", baseline.download_mbps, baseline.upload_mbps);
    for (name, config) in [("MopEye", MopEyeConfig::mopeye()), ("Haystack", MopEyeConfig::haystack_like())] {
        let r = harness.with_relay(&config);
        println!("  {name:<10}: {:>6.2} / {:>6.2} Mbps (down/up)", r.download_mbps, r.upload_mbps);
    }
}
