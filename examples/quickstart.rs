//! Quickstart: relay one app's traffic and print its per-app RTTs.
//!
//! Run with `cargo run --example quickstart`.

use mopeye::engine::{MopEyeConfig, MopEyeEngine};
use mopeye::packet::Endpoint;
use mopeye::simnet::{SimDuration, SimNetwork};
use mopeye::tun::{Workload, WorkloadKind};

fn main() {
    // A simulated handset on WiFi, with the paper's three test destinations
    // (Google, Facebook, Dropbox) reachable.
    let net = SimNetwork::builder().seed(42).with_table2_destinations().build();

    // The MopEye engine with the configuration the released app uses.
    let mut engine = MopEyeEngine::new(MopEyeConfig::mopeye(), net);

    // One app browsing the web for thirty seconds.
    let chrome = Workload::new(
        WorkloadKind::WebBrowsing,
        10_100,
        "com.android.chrome",
        vec![
            (Endpoint::v4(216, 58, 221, 132, 443), "www.google.com".into()),
            (Endpoint::v4(31, 13, 79, 251, 443), "graph.facebook.com".into()),
        ],
        SimDuration::from_secs(30),
        6,
    );

    let report = engine.run(&[chrome]);

    println!("connections relayed : {}", report.relay.connects_ok);
    println!("pure ACKs discarded : {}", report.relay.pure_acks_discarded);
    println!("DNS queries measured: {}", report.relay.dns_queries);
    println!();
    println!("{:<22} {:>10} {:>12} {:>10}", "app", "domain", "RTT (ms)", "err (ms)");
    for sample in report.tcp_samples().iter().take(15) {
        println!(
            "{:<22} {:>10} {:>12.2} {:>10.3}",
            sample.package.as_deref().unwrap_or("?"),
            sample.domain.as_deref().unwrap_or("-").split('.').nth(1).unwrap_or("-"),
            sample.measured_ms,
            sample.error_ms(),
        );
    }
    println!();
    println!(
        "mean measurement error vs tcpdump: {:.3} ms (the paper reports at most 1 ms)",
        report.mean_tcp_error_ms().unwrap_or(f64::NAN)
    );
    println!(
        "lazy mapping avoided {:.0}% of /proc/net parses",
        100.0 * report.mapping.mitigation_rate()
    );
}
