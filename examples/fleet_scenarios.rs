//! Fleet-scale scenario demo: the workload-mix × network-profile matrix on
//! the sharded relay engine, plus a 100k-connection rush-hour run with a
//! determinism check across shard counts.
//!
//! ```console
//! cargo run --release --example fleet_scenarios            # full demo
//! FLEET_USERS=2000 cargo run --release --example fleet_scenarios
//! ```

use mopeye::dataset::{NetProfile, Scenario, TrafficMix};
use mopeye::engine::{FleetConfig, FleetEngine};
use mopeye::simnet::SimDuration;

fn main() {
    // ----- the scenario matrix: every mix on every profile ----------------
    println!("== scenario matrix (200 users each, 4 shards) ==");
    println!(
        "{:<38} {:>7} {:>8} {:>10} {:>10} {:>9}",
        "scenario", "flows", "samples", "tcp p50ms", "dns p50ms", "goodput"
    );
    for mix in TrafficMix::ALL {
        for profile in NetProfile::ALL {
            let scenario = Scenario::single(mix, profile, 200, SimDuration::from_secs(5), 42);
            let fleet = FleetEngine::new(FleetConfig::new(4), scenario.network());
            let report = fleet.run(scenario.generate());
            let tcp: Vec<f64> =
                report.merged.tcp_samples().iter().map(|s| s.measured_ms).collect();
            let dns: Vec<f64> =
                report.merged.dns_samples().iter().map(|s| s.measured_ms).collect();
            println!(
                "{:<38} {:>7} {:>8} {:>10} {:>10} {:>9}",
                scenario.spec().name,
                report.merged.flows.len(),
                report.merged.samples.len(),
                median(&tcp).map_or("-".into(), |m| format!("{m:.1}")),
                median(&dns).map_or("-".into(), |m| format!("{m:.1}")),
                report
                    .relay_throughput_mbps()
                    .map_or("-".into(), |t| format!("{t:.1}Mb")),
            );
        }
    }

    // ----- the 100k-connection rush hour ----------------------------------
    let users: usize = std::env::var("FLEET_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(13_000);
    let scenario = Scenario::rush_hour(users, 2017);
    let flows = scenario.generate();
    println!();
    println!("== rush hour: {} users, {} connections ==", users, flows.len());
    let mut digests = Vec::new();
    for shards in [2usize, 8] {
        let fleet = FleetEngine::new(FleetConfig::new(shards), scenario.network());
        let started = std::time::Instant::now();
        let report = fleet.run(flows.clone());
        let elapsed = started.elapsed();
        println!(
            "  {shards} shards: digest {:016x}, {} samples, finished at {}, \
             pool reuse {:.2}%, {:.1}s wall",
            report.digest(),
            report.merged.samples.len(),
            report.merged.finished_at,
            100.0 * report.merged.buffer_pool.reuse_rate(),
            elapsed.as_secs_f64(),
        );
        for shard in &report.per_shard {
            println!(
                "    shard {}: {} flows, {} events",
                shard.shard, shard.flows_assigned, shard.events_processed
            );
        }
        digests.push(report.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "fleet runs must be identical across shard counts"
    );
    println!("  deterministic: identical digests across shard counts ✓");
}

fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(sorted[sorted.len() / 2])
}
